//! Plan-level pipelining over a sharded data plane.
//!
//! The [`par`](crate::par) module parallelizes *inside* one operator and
//! still walks the plan tree serially: a join's build input fully
//! materializes before its probe input starts. This module removes that
//! barrier. [`dag_execute`] decomposes a [`PlanNode`] tree into a
//! dependency DAG of **operator tasks** and hands it to
//! [`exec_parallel::run_dag`]: independent subtrees (the inputs of an
//! independent join) evaluate concurrently, each task nests morsel
//! dispatches on the shared [`Pool`], and every task's output lands in a
//! pre-assigned slot so downstream stitching is deterministic.
//!
//! ## Task decomposition
//!
//! * Leaves (scans, complement scans, constants) become zero-dependency
//!   tasks — all of a plan's scans are runnable at once.
//! * `Select`/`IndependentProject` are **fused into their child task** as
//!   post-operators: a single-child chain never pays a scheduler hop
//!   (ready-queue round trip, slot write, dependency count) per operator.
//!   The operator kernels run unchanged and in the same order, so the
//!   fusion is invisible in the output; [`DagStats::inlined`] counts the
//!   operators absorbed this way.
//! * An `IndependentJoin` over inputs `i0, i1, …` becomes a chain of
//!   [`JoinStage`](Task) tasks replicating the serial fold
//!   `certain ⋈ i0 ⋈ i1 ⋈ …` — stage `k` depends on stage `k−1` *and*
//!   input `k`, so input `k+1` evaluates while stage `k` joins.
//!
//! Each join stage's **build side is chosen from the cost model's
//! posting-list estimates** ([`estimate_rows`]) at decomposition time —
//! before either input materializes — mirroring the incremental estimate
//! the join-ordering rule uses. The output is bit-identical either way
//! (see [`par_join_sided`]); [`OpCounters::est_builds`] counts the
//! estimate-driven choices and [`OpCounters::est_build_overrides`] how
//! many disagreed with the materialized-row-count rule.
//!
//! ## Sharded scans
//!
//! With [`DagOptions::shards`] `> 1`, scan tasks run one kernel per shard
//! and k-way-merge the per-shard outputs back into the exact monolithic
//! row order — same rows, same order, same bits. Two data planes feed
//! that merge:
//!
//! * **Shard-resident** (`db.shard_layout() == shards`): the scan
//!   resolves against per-shard posting lists and reads rows off each
//!   shard's resident columnar buffer ([`scan_column_keyed`]) — zero
//!   global-index probes, no split step — and the merge keys are tuple
//!   ids (global scan order *is* ascending-id order).
//! * **Split-derived** (no matching layout): the global id list is
//!   hash-partitioned through [`pdb::ShardMap`] on the fly and
//!   [`scan_rows_at`](crate::exec) reports which original positions
//!   survived; the merge keys are those positions.
//!
//! When the pool is inline (one worker), the resident plane fuses the
//! k-way id merge into the scan itself ([`scan_columns_merged`]) — one
//! pass over the resident buffers, no per-shard materialization, same
//! rows in the same ascending-id order. Complement scans stay monolithic
//! (their rows are generated bindings with no tuple ids). Independent
//! projects fan groups out over `shards × threads` partitions; the
//! first-seen-row merge is partition-count invariant, so the fan-out
//! never perturbs a bit.
//!
//! The invariant pinned by `tests/sharded_agreement.rs` and the in-crate
//! tests below: for every plan, database, thread count, shard count, and
//! scheduler picker, the DAG executor returns **bit-for-bit** the serial
//! executor's relation.

use crate::exec::{
    complement_rows, scan_column_keyed, scan_columns_merged, scan_rows, scan_rows_at,
    scan_rows_keyed, ComplementSpec, OpCounters, ScanSpec, ShardScanSpec,
};
use crate::node::PlanNode;
use crate::optimize::{columns, estimate_rows};
use crate::par::{par_join_sided, par_project_parts, par_select};
use crate::relation::{choose_build_side, stitch_columnar, BuildSide, ProbRelation};
use cq::{Pred, Value, Var};
use exec_parallel::{run_dag_with_picker, DagSlots, DagStats, ExecStats, Pool, DEFAULT_GRAIN};
use lineage::ProbValue;
use pdb::{ProbDb, ShardMap};
use std::collections::BTreeSet;
use std::time::Instant;

/// Tuning for one DAG execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagOptions {
    /// Worker threads shared by the task scheduler and the nested morsel
    /// dispatches (1 = serial task schedule, serial morsels).
    pub threads: usize,
    /// Morsel size in rows for the nested intra-operator dispatches.
    pub grain: usize,
    /// Shard fan-out of the data plane (1 = monolithic). Callers wanting
    /// the cost model's opinion gate their request through
    /// [`crate::optimize::plan_shard_fanout`] first; the executor runs
    /// whatever fan-out it is handed.
    pub shards: usize,
}

impl DagOptions {
    pub fn new(threads: usize, shards: usize) -> Self {
        DagOptions {
            threads,
            grain: DEFAULT_GRAIN,
            shards,
        }
    }

    pub fn with_grain(threads: usize, shards: usize, grain: usize) -> Self {
        DagOptions {
            threads,
            grain,
            shards,
        }
    }

    /// The morsel pool this configuration describes.
    pub fn pool(&self) -> Pool {
        Pool::with_grain(self.threads, self.grain)
    }
}

impl Default for DagOptions {
    fn default() -> Self {
        DagOptions::new(1, 1)
    }
}

/// How the sharded data plane spread one execution's scan output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Fan-out the execution ran with (1 = monolithic plane).
    pub shards: usize,
    /// Scan-output rows per shard, summed over every sharded scan. All in
    /// shard 0 when the plane is monolithic.
    pub rows: Vec<u64>,
}

/// Everything a DAG execution reports besides the relation itself.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DagRun {
    /// Per-worker morsel timings from the shared pool.
    pub threads: ExecStats,
    /// Task-schedule shape: ready/running peaks and subtree overlap.
    pub sched: DagStats,
    /// Per-shard row spread of the data plane.
    pub shards: ShardStats,
}

/// One schedulable unit of a decomposed plan.
enum Task<'p> {
    /// An empty join's unit: the certain relation.
    Unit,
    /// A leaf node (scan, complement scan, constant) — no dependencies.
    Leaf(&'p PlanNode),
    /// One fold step of `certain ⋈ i0 ⋈ i1 ⋈ …`; `left` is the previous
    /// stage (`None` = the certain accumulator), `right` the input task.
    JoinStage {
        left: Option<usize>,
        right: usize,
        est_side: BuildSide,
    },
}

/// A single-child operator fused into its child task: after the task's
/// own kernel produces a relation, its posts run in plan order on the
/// same worker — identical kernels, identical order, no scheduler hop.
enum Post<'p> {
    Select(Pred),
    Project(&'p [Var]),
}

/// What one task hands downstream: its relation plus the counters and
/// per-shard row counts it accrued (merged by the coordinator after the
/// schedule drains — tasks never share mutable state).
struct TaskOut<P> {
    rel: ProbRelation<P>,
    counters: OpCounters,
    shard_rows: Vec<u64>,
}

/// Flatten `plan` into `tasks`/`deps`, children before parents (so every
/// dependency index precedes its task, the shape [`run_dag`] requires),
/// and return the root task's index — always the last. Single-child
/// `Select`/`IndependentProject` chains are fused into their child's
/// `posts` instead of becoming tasks; `inlined` counts the fusions.
fn decompose<'p>(
    plan: &'p PlanNode,
    db: &ProbDb,
    tasks: &mut Vec<Task<'p>>,
    deps: &mut Vec<Vec<usize>>,
    posts: &mut Vec<Vec<Post<'p>>>,
    inlined: &mut u64,
) -> usize {
    match plan {
        PlanNode::Certain
        | PlanNode::Never
        | PlanNode::Scan { .. }
        | PlanNode::ComplementScan { .. } => {
            tasks.push(Task::Leaf(plan));
            deps.push(Vec::new());
            posts.push(Vec::new());
        }
        PlanNode::Select { pred, input } => {
            let i = decompose(input, db, tasks, deps, posts, inlined);
            posts[i].push(Post::Select(*pred));
            *inlined += 1;
            return i;
        }
        PlanNode::IndependentProject { keep, input } => {
            let i = decompose(input, db, tasks, deps, posts, inlined);
            posts[i].push(Post::Project(keep));
            *inlined += 1;
            return i;
        }
        PlanNode::IndependentJoin { inputs } => {
            if inputs.is_empty() {
                tasks.push(Task::Unit);
                deps.push(Vec::new());
                posts.push(Vec::new());
                return tasks.len() - 1;
            }
            // All input subtrees first — they are mutually independent,
            // so they all become runnable as their own leaves complete.
            let ins: Vec<usize> = inputs
                .iter()
                .map(|i| decompose(i, db, tasks, deps, posts, inlined))
                .collect();
            // Then the fold chain, each stage's build side chosen from
            // the same incremental estimate the join-ordering rule
            // computes (the accumulator starts as certain: one row).
            let mut acc_est = 1.0f64;
            let mut seen: BTreeSet<Var> = BTreeSet::new();
            let mut prev: Option<usize> = None;
            for (k, &right) in ins.iter().enumerate() {
                let right_est = estimate_rows(&inputs[k], db);
                let est_side = if acc_est < right_est {
                    BuildSide::Left
                } else {
                    BuildSide::Right
                };
                let mut d = vec![right];
                if let Some(p) = prev {
                    d.push(p);
                }
                tasks.push(Task::JoinStage {
                    left: prev,
                    right,
                    est_side,
                });
                deps.push(d);
                posts.push(Vec::new());
                prev = Some(tasks.len() - 1);
                let cols = columns(&inputs[k]);
                let shared = cols.intersection(&seen).count();
                acc_est *= right_est / 2f64.powi(shared as i32);
                seen.extend(cols);
            }
        }
    }
    tasks.len() - 1
}

/// Evaluate a leaf node, sharding scan tasks over `map` when the plane is
/// partitioned.
fn leaf_rel<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    node: &PlanNode,
    pool: &Pool,
    map: ShardMap,
    counters: &mut OpCounters,
    shard_rows: &mut [u64],
) -> ProbRelation<P> {
    match node {
        PlanNode::Certain => ProbRelation::certain(),
        PlanNode::Never => ProbRelation::never(),
        PlanNode::Scan { atom } => {
            if map.shards() > 1 && db.shard_layout() == map.shards() {
                // Shard-resident path: the scan resolves against the
                // per-shard posting lists (zero global-index probes) and
                // full scans read straight off each shard's resident
                // columnar buffer. Keys are tuple ids — global scan order
                // *is* ascending-id order, so the id merge reproduces the
                // monolithic output exactly.
                let scan = ShardScanSpec::new(db, atom, map.shards(), counters);
                if !scan.pushdown && pool.threads() == 1 {
                    // Inline pool: nothing scans concurrently, so fuse the
                    // k-way id merge into the scan itself — one pass over
                    // the resident buffers writing survivors straight into
                    // the output, no per-shard materialization.
                    let resident: Vec<_> = (0..map.shards())
                        .map(|s| db.shard_resident(s, atom.rel))
                        .collect();
                    return scan_columns_merged(
                        &resident, probs, &scan.plan, scan.cols, shard_rows,
                    );
                }
                let outs = pool.map_partitions(map.shards(), |s| {
                    if scan.pushdown {
                        scan_rows_keyed(db, probs, &scan.plan, scan.shard_ids[s])
                    } else {
                        match db.shard_resident(s, atom.rel) {
                            Some(col) => scan_column_keyed(col, probs, &scan.plan),
                            None => Default::default(),
                        }
                    }
                });
                for (s, o) in outs.iter().enumerate() {
                    shard_rows[s] += o.1.len() as u64;
                }
                merge_shard_scans(scan.cols, outs)
            } else {
                let scan = ScanSpec::new(db, atom, counters);
                if map.shards() <= 1 {
                    let chunks = pool.map_morsels(scan.ids.len(), |r| {
                        scan_rows(db, probs, &scan.plan, &scan.ids[r])
                    });
                    let (data, out) = stitch_columnar(chunks);
                    shard_rows[0] += out.len() as u64;
                    ProbRelation::from_parts(scan.cols, data, out)
                } else {
                    // No resident layout: hash-partition the global id
                    // list on the fly. One kernel per shard over that
                    // shard's (ascending) positions into the id list; the
                    // k-way merge by original position restores the
                    // monolithic row order exactly.
                    let parts = map.split_positions(scan.ids);
                    let outs = pool.map_partitions(map.shards(), |s| {
                        scan_rows_at(db, probs, &scan.plan, scan.ids, &parts[s])
                    });
                    for (s, o) in outs.iter().enumerate() {
                        shard_rows[s] += o.1.len() as u64;
                    }
                    merge_shard_scans(scan.cols, outs)
                }
            }
        }
        PlanNode::ComplementScan { atom } => {
            // Complement rows are generated bindings with no tuple ids —
            // nothing to shard; morsel parallelism still applies.
            let spec = ComplementSpec::new(db, atom, counters);
            let chunks = pool.map_morsels(spec.total, |r| complement_rows(db, probs, &spec, r));
            let (data, out) = stitch_columnar(chunks);
            ProbRelation::from_parts(spec.cols.clone(), data, out)
        }
        other => unreachable!("non-leaf node in leaf task: {other:?}"),
    }
}

/// Merge per-shard scan outputs by ascending original position — the
/// selection merge over at most `shards` cursors that makes sharding
/// invisible in the output.
fn merge_shard_scans<P: ProbValue>(
    cols: Vec<Var>,
    outs: Vec<(Vec<Value>, Vec<P>, Vec<u32>)>,
) -> ProbRelation<P> {
    let _span = telemetry::span("merge");
    // Fast path: at most one shard produced rows (fan-out 1, or all
    // survivors hashed to one shard) — its buffer already *is* the merged
    // output, so adopt it wholesale instead of walking cursors.
    if outs.iter().filter(|o| !o.1.is_empty()).count() <= 1 {
        return match outs.into_iter().find(|o| !o.1.is_empty()) {
            Some((data, probs, _)) => ProbRelation::from_parts(cols, data, probs),
            None => ProbRelation::with_capacity(cols, 0),
        };
    }
    let arity = cols.len();
    let total: usize = outs.iter().map(|o| o.1.len()).sum();
    let mut out = ProbRelation::with_capacity(cols, total);
    let mut cur = vec![0usize; outs.len()];
    loop {
        let mut best: Option<(u32, usize)> = None;
        for (s, o) in outs.iter().enumerate() {
            if let Some(&pos) = o.2.get(cur[s]) {
                if best.is_none_or(|(b, _)| pos < b) {
                    best = Some((pos, s));
                }
            }
        }
        let Some((_, s)) = best else {
            return out;
        };
        let i = cur[s];
        out.push(&outs[s].0[i * arity..(i + 1) * arity], outs[s].1[i].clone());
        cur[s] += 1;
    }
}

/// Execute `plan` as an operator DAG over the (possibly sharded) data
/// plane. Returns exactly what [`crate::execute`] returns — same rows,
/// same order, same bits — for every thread count, shard count, and
/// schedule.
pub fn dag_execute<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    opts: &DagOptions,
) -> ProbRelation<P> {
    dag_execute_counted(db, probs, plan, opts, &mut OpCounters::default()).0
}

/// [`dag_execute`] accumulating [`OpCounters`] and reporting the schedule
/// and shard shape. Per-task counters are absorbed in task order after the
/// schedule drains, so the totals are deterministic (and, for the fields
/// the serial executor maintains, equal to its totals).
pub fn dag_execute_counted<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    opts: &DagOptions,
    counters: &mut OpCounters,
) -> (ProbRelation<P>, DagRun) {
    dag_execute_counted_with_picker(db, probs, plan, opts, |ready| ready.len() - 1, counters)
}

/// [`dag_execute_counted`] with an injectable scheduler picker (see
/// [`exec_parallel::run_dag_with_picker`]). The torn-schedule property
/// tests drive this with seeded random pickers and assert the output bits
/// never move.
pub fn dag_execute_counted_with_picker<P, PK>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    opts: &DagOptions,
    picker: PK,
    counters: &mut OpCounters,
) -> (ProbRelation<P>, DagRun)
where
    P: ProbValue + Send + Sync,
    PK: Fn(&[usize]) -> usize + Sync,
{
    assert_eq!(probs.len(), db.num_tuples(), "probability vector length");
    let fanout = opts.shards.max(1);
    let map = ShardMap::new(fanout);
    let pool = opts.pool();
    let mut tasks: Vec<Task<'_>> = Vec::new();
    let mut deps: Vec<Vec<usize>> = Vec::new();
    let mut posts: Vec<Vec<Post<'_>>> = Vec::new();
    let mut inlined = 0u64;
    let root = decompose(plan, db, &mut tasks, &mut deps, &mut posts, &mut inlined);
    debug_assert_eq!(root, tasks.len() - 1, "root must be the last task");

    let (mut outs, mut sched) = run_dag_with_picker(
        opts.threads,
        &deps,
        picker,
        |t, slots: DagSlots<'_, TaskOut<P>>| {
            let mut c = OpCounters::default();
            let mut shard_rows = vec![0u64; fanout];
            let mut rel = match &tasks[t] {
                Task::Unit => ProbRelation::certain(),
                Task::Leaf(node) => {
                    let _span = telemetry::span(match node {
                        PlanNode::Scan { .. } => "scan",
                        PlanNode::ComplementScan { .. } => "complement-scan",
                        _ => "leaf",
                    });
                    let t0 = Instant::now();
                    let out = leaf_rel(db, probs, node, &pool, map, &mut c, &mut shard_rows);
                    match node {
                        PlanNode::ComplementScan { .. } => {
                            c.times.complement_ns += t0.elapsed().as_nanos() as u64;
                        }
                        _ => c.times.scan_ns += t0.elapsed().as_nanos() as u64,
                    }
                    out
                }
                Task::JoinStage {
                    left,
                    right,
                    est_side,
                } => {
                    let _span = telemetry::span("join");
                    let t0 = Instant::now();
                    let unit;
                    let l = match left {
                        Some(i) => &slots.get(*i).rel,
                        None => {
                            unit = ProbRelation::certain();
                            &unit
                        }
                    };
                    let r = &slots.get(*right).rel;
                    c.est_builds += 1;
                    if *est_side != choose_build_side(l.len(), r.len()) {
                        c.est_build_overrides += 1;
                    }
                    let out = par_join_sided(l, r, *est_side, &pool, &mut c);
                    c.times.join_ns += t0.elapsed().as_nanos() as u64;
                    out
                }
            };
            // Fused single-child operators run here, on the same worker,
            // with the exact kernels and order the standalone tasks used.
            for post in &posts[t] {
                match post {
                    Post::Select(pred) => {
                        let _span = telemetry::span("select");
                        let t0 = Instant::now();
                        rel = par_select(&rel, pred, &pool);
                        c.times.select_ns += t0.elapsed().as_nanos() as u64;
                    }
                    Post::Project(keep) => {
                        let _span = telemetry::span("project");
                        let t0 = Instant::now();
                        rel = par_project_parts(&rel, keep, &pool, fanout * pool.threads());
                        c.groups += rel.len() as u64;
                        c.times.project_ns += t0.elapsed().as_nanos() as u64;
                    }
                }
            }
            TaskOut {
                rel,
                counters: c,
                shard_rows,
            }
        },
    );
    sched.inlined = inlined;

    let mut shards = ShardStats {
        shards: fanout,
        rows: vec![0; fanout],
    };
    for o in &outs {
        counters.absorb(&o.counters);
        for (s, r) in o.shard_rows.iter().enumerate() {
            shards.rows[s] += r;
        }
    }
    counters.shard_fanout = counters.shard_fanout.max(fanout as u64);
    let rel = outs.swap_remove(root).rel;
    let run = DagRun {
        threads: pool.stats(),
        sched,
        shards,
    };
    (rel, run)
}

/// `p(q)` of a Boolean plan in `f64` arithmetic via the DAG executor.
pub fn dag_query_probability(db: &ProbDb, plan: &PlanNode, opts: &DagOptions) -> (f64, DagRun) {
    dag_query_probability_counted(db, plan, opts, &mut OpCounters::default())
}

/// [`dag_query_probability`] with operator counters.
pub fn dag_query_probability_counted(
    db: &ProbDb,
    plan: &PlanNode,
    opts: &DagOptions,
    counters: &mut OpCounters,
) -> (f64, DagRun) {
    let (rel, run) = dag_execute_counted(db, &db.prob_vector(), plan, opts, counters);
    (rel.scalar(), run)
}

/// DAG counterpart of [`crate::ranked_probabilities`]: one
/// `(head binding, marginal probability)` pair per candidate, in the
/// serial path's exact order.
///
/// # Panics
/// If `plan` does not carry every variable of `head` as an output column.
pub fn dag_ranked_probabilities<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    head: &[Var],
    opts: &DagOptions,
) -> (Vec<(Vec<Value>, P)>, DagRun) {
    let mut counters = OpCounters::default();
    dag_ranked_probabilities_counted(db, probs, plan, head, opts, &mut counters)
}

/// [`dag_ranked_probabilities`] accumulating operator counters into
/// `counters` alongside the scheduler/shard report.
pub fn dag_ranked_probabilities_counted<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    head: &[Var],
    opts: &DagOptions,
    counters: &mut OpCounters,
) -> (Vec<(Vec<Value>, P)>, DagRun) {
    let (rel, run) = dag_execute_counted(db, probs, plan, opts, counters);
    (crate::exec::project_head(&rel, head), run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_plan;
    use crate::exec::{execute, execute_counted};
    use cq::{parse_query, Vocabulary};
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    use pdb::RatProbs;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Mutex;

    /// The parallel suite's safe shapes: joins, constants, predicates,
    /// self-key atoms, negation — every leaf and stage kind.
    const QUERIES: &[&str] = &[
        "R(x)",
        "R(x), S(x,y)",
        "R(x), S(x,y), U(x,y,z)",
        "R(x), T(z,w)",
        "R(1), S(1,y)",
        "S(x,y), x < y",
        "S(x,x)",
        "R(x), S(x,y), U(x,y,z), V(x,w)",
        "R(x), not T(x)",
        "R(x), S(x,y), not U(x,y,z)",
    ];

    #[test]
    fn dag_matches_serial_across_threads_and_shards() {
        let mut rng = StdRng::seed_from_u64(0xDA6);
        for (i, text) in QUERIES.iter().enumerate() {
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).unwrap();
            let plan = build_plan(&q).unwrap();
            let opts = RandomDbOptions {
                domain: 3,
                tuples_per_relation: 12,
                prob_range: (0.1, 0.9),
            };
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let probs = db.prob_vector();
            let serial = execute(&db, &probs, &plan);
            for threads in [1, 2, 4] {
                for shards in [1, 2, 4] {
                    // grain 2: force multi-morsel schedules inside tasks.
                    let opts = DagOptions::with_grain(threads, shards, 2);
                    let (got, run) =
                        dag_execute_counted(&db, &probs, &plan, &opts, &mut OpCounters::default());
                    assert_eq!(
                        serial, got,
                        "query {i} ({text}) diverged at {threads} threads {shards} shards"
                    );
                    assert_eq!(run.shards.shards, shards);
                }
            }
        }
    }

    /// Satellite: torn schedules on real plans — a seeded random picker
    /// permutes task completion order; output bits never change.
    #[test]
    fn torn_schedules_never_change_plan_output() {
        let mut rng = StdRng::seed_from_u64(0x70A2);
        for text in [
            "R(x), S(x,y), U(x,y,z), V(x,w)",
            "R(x), S(x,y), not U(x,y,z)",
        ] {
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).unwrap();
            let plan = build_plan(&q).unwrap();
            let opts = RandomDbOptions {
                domain: 3,
                tuples_per_relation: 12,
                prob_range: (0.1, 0.9),
            };
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let probs = db.prob_vector();
            let serial = execute(&db, &probs, &plan);
            for seed in 0..8u64 {
                for threads in [1, 3] {
                    let picker_rng = Mutex::new(StdRng::seed_from_u64(seed));
                    let picker =
                        |ready: &[usize]| picker_rng.lock().unwrap().gen_range(0..ready.len());
                    let opts = DagOptions::with_grain(threads, 2, 2);
                    let (got, _) = dag_execute_counted_with_picker(
                        &db,
                        &probs,
                        &plan,
                        &opts,
                        picker,
                        &mut OpCounters::default(),
                    );
                    assert_eq!(serial, got, "{text} seed={seed} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn dag_counters_match_serial_totals_and_record_the_cost_model() {
        let mut rng = StdRng::seed_from_u64(0xC057);
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(1), S(1,y), U(x,y,z)").unwrap();
        let plan = build_plan(&q).unwrap();
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 12,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = db.prob_vector();
        let mut serial = OpCounters::default();
        let _ = execute_counted(&db, &probs, &plan, &mut serial);
        let mut dag = OpCounters::default();
        let _ = dag_execute_counted(
            &db,
            &probs,
            &plan,
            &DagOptions::with_grain(4, 2, 2),
            &mut dag,
        );
        // Operator-granularity counters are identical; the DAG path adds
        // its cost-model record on top.
        assert_eq!(serial.scans, dag.scans);
        assert_eq!(serial.index_scans, dag.index_scans);
        assert_eq!(serial.rows_scanned, dag.rows_scanned);
        assert_eq!(serial.rows_pruned, dag.rows_pruned);
        assert_eq!(serial.joins, dag.joins);
        assert_eq!(serial.join_rows, dag.join_rows);
        assert_eq!(serial.groups, dag.groups);
        assert_eq!(dag.est_builds, dag.joins, "every stage is estimate-chosen");
        assert_eq!(dag.shard_fanout, 2);
        assert_eq!(serial.shard_fanout, 0, "serial path never shards");
    }

    #[test]
    fn resident_layout_scans_without_global_index_probes() {
        let mut rng = StdRng::seed_from_u64(0x5A1D);
        for text in [
            "R(x), S(x,y)",
            "R(1), S(1,y), U(x,y,z)",
            "S(x,x)",
            "R(x), not T(x)",
        ] {
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).unwrap();
            let plan = build_plan(&q).unwrap();
            let opts = RandomDbOptions {
                domain: 4,
                tuples_per_relation: 40,
                prob_range: (0.1, 0.9),
            };
            let mut db = random_db_for_query(&q, &voc, opts, &mut rng);
            let probs = db.prob_vector();
            let mut serial_c = OpCounters::default();
            let serial = execute_counted(&db, &probs, &plan, &mut serial_c);
            assert!(serial_c.global_index_probes > 0, "{text}: serial probes");
            for shards in [2usize, 3, 7] {
                db.set_shard_layout(shards);
                for threads in [1, 4] {
                    let mut c = OpCounters::default();
                    let (got, _) = dag_execute_counted(
                        &db,
                        &probs,
                        &plan,
                        &DagOptions::with_grain(threads, shards, 2),
                        &mut c,
                    );
                    assert_eq!(serial, got, "{text} at {threads} threads {shards} shards");
                    assert_eq!(
                        c.global_index_probes, 0,
                        "{text}: resident path probed globally"
                    );
                    assert!(c.shard_index_probes > 0, "{text}: no shard probes recorded");
                    // Scan-granularity counters replicate the monolithic
                    // figures exactly — the per-shard lists partition the
                    // global lists, so the same column wins pushdown.
                    assert_eq!(c.scans, serial_c.scans, "{text}");
                    assert_eq!(c.index_scans, serial_c.index_scans, "{text}");
                    assert_eq!(c.rows_scanned, serial_c.rows_scanned, "{text}");
                    assert_eq!(c.rows_pruned, serial_c.rows_pruned, "{text}");
                }
            }
            // Fan-out ≠ layout: the executor must fall back to the
            // split-derived path (global probes again) and still agree.
            let mut c = OpCounters::default();
            let (got, _) =
                dag_execute_counted(&db, &probs, &plan, &DagOptions::with_grain(2, 2, 2), &mut c);
            assert_eq!(serial, got, "{text}: split fallback diverged");
            assert_eq!(
                c.global_index_probes, serial_c.global_index_probes,
                "{text}"
            );
        }
    }

    #[test]
    fn sharded_scan_rows_spread_and_sum() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        for i in 0..400u64 {
            db.insert(r, vec![Value(i)], 0.3);
            db.insert(s, vec![Value(i % 40), Value(i)], 0.6);
        }
        let plan = build_plan(&q).unwrap();
        let probs = db.prob_vector();
        let serial = execute(&db, &probs, &plan);
        let opts = DagOptions::with_grain(4, 4, 16);
        let (got, run) = dag_execute_counted(&db, &probs, &plan, &opts, &mut OpCounters::default());
        assert_eq!(serial, got);
        assert_eq!(run.shards.rows.len(), 4);
        assert_eq!(run.shards.rows.iter().sum::<u64>(), 800, "all scan rows");
        assert!(
            run.shards.rows.iter().all(|&r| r > 0),
            "skewed shards: {:?}",
            run.shards.rows
        );
    }

    #[test]
    fn dag_matches_serial_on_exact_rationals() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 8,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = RatProbs::from_db(&db);
        let serial = execute(&db, probs.as_slice(), &plan);
        let got = dag_execute(
            &db,
            probs.as_slice(),
            &plan,
            &DagOptions::with_grain(4, 2, 2),
        );
        assert_eq!(serial, got);
    }

    #[test]
    fn ranked_dag_matches_serial() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "Director(d), Credit(d,m)").unwrap();
        let d = q.vars()[0];
        let plan = crate::build::build_ranked_plan(&q, &[d]).unwrap();
        let director = voc.find_relation("Director").unwrap();
        let credit = voc.find_relation("Credit").unwrap();
        let mut db = ProbDb::new(voc);
        for i in 0..20u64 {
            db.insert(director, vec![Value(i)], 0.02 + 0.04 * i as f64);
            db.insert(credit, vec![Value(i), Value(100 + i)], 0.9);
            db.insert(credit, vec![Value(i), Value(200 + i)], 0.4);
        }
        let probs = db.prob_vector();
        let serial = crate::exec::ranked_probabilities(&db, &probs, &plan, &[d]);
        for threads in [1, 2, 4] {
            for shards in [1, 3] {
                let (got, _) = dag_ranked_probabilities(
                    &db,
                    &probs,
                    &plan,
                    &[d],
                    &DagOptions::with_grain(threads, shards, 2),
                );
                assert_eq!(serial, got, "{threads} threads {shards} shards");
            }
        }
    }

    #[test]
    fn bushy_plans_overlap_subtrees() {
        // Four scans under one join: with 4 workers, independent subtrees
        // must actually run concurrently at least once.
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y), U(x,y,z), V(x,w)").unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(0xB00);
        let opts = RandomDbOptions {
            domain: 6,
            tuples_per_relation: 300,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = db.prob_vector();
        let (got, run) = dag_execute_counted(
            &db,
            &probs,
            &plan,
            &DagOptions::with_grain(4, 1, 32),
            &mut OpCounters::default(),
        );
        assert_eq!(execute(&db, &probs, &plan), got);
        assert!(run.sched.max_ready >= 2, "{:?}", run.sched);
        assert!(run.sched.tasks >= 8, "{:?}", run.sched);
        assert!(
            run.sched.inlined >= 1,
            "projects should fuse into their producers: {:?}",
            run.sched
        );
    }

    #[test]
    fn empty_database_scalar_is_zero() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let db = ProbDb::new(voc);
        let plan = build_plan(&q).unwrap();
        let (p, _) = dag_query_probability(&db, &plan, &DagOptions::new(4, 4));
        assert_eq!(p, 0.0);
    }
}
