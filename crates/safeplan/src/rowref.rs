//! The row-at-a-time reference executor: the data plane as it stood before
//! the columnar flat-buffer rewrite (PR 3).
//!
//! Rows travel as `Vec<(Vec<Value>, P)>` — one heap allocation per row —
//! joins always hash the right-hand input, and grouping goes through a
//! `BTreeMap<Vec<Value>, P>` with per-row key clones. It is kept, verbatim
//! in behavior, for two jobs:
//!
//! * **correctness oracle** — the columnar executor (serial and parallel,
//!   at every thread count) must return *bit-for-bit* what this executor
//!   returns: same rows, same order, same `f64` values. The
//!   `columnar_agreement` integration tests pin that property on random
//!   hierarchical self-join-free queries and ranked answer sets.
//! * **bench baseline** — the `columnar_exec` bench measures the columnar
//!   data plane against this one on the 100k-tuple star workload, serial
//!   and multi-threaded.
//!
//! Nothing in the production path calls into this module.

use crate::exec::{complement_domain, complement_row_count, eval_pred};
use crate::node::PlanNode;
use cq::{Atom, Term, Value, Var};
use exec_parallel::Pool;
use lineage::ProbValue;
use pdb::{ProbDb, TupleId};
use std::collections::BTreeMap;
use std::ops::Range;

/// A probabilistic relation in the pre-columnar row layout.
#[derive(Clone, Debug, PartialEq)]
pub struct RowRelation<P> {
    pub cols: Vec<Var>,
    pub rows: Vec<(Vec<Value>, P)>,
}

impl<P: ProbValue> RowRelation<P> {
    pub fn certain() -> Self {
        RowRelation {
            cols: Vec::new(),
            rows: vec![(Vec::new(), P::one())],
        }
    }

    pub fn never() -> Self {
        RowRelation {
            cols: Vec::new(),
            rows: Vec::new(),
        }
    }

    pub fn col_index(&self, v: Var) -> Option<usize> {
        self.cols.iter().position(|&c| c == v)
    }

    /// For a Boolean (zero-column) relation: the scalar probability.
    pub fn scalar(&self) -> P {
        assert!(self.cols.is_empty(), "scalar() on non-Boolean relation");
        match self.rows.len() {
            0 => P::zero(),
            1 => self.rows[0].1.clone(),
            n => panic!("Boolean relation with {n} rows"),
        }
    }

    /// Natural join, multiplying probabilities; always hashes the
    /// right-hand side regardless of size (the PR-2 behavior).
    pub fn independent_join(&self, other: &RowRelation<P>) -> RowRelation<P> {
        let spec = row_join_spec(&self.cols, &other.cols);
        let index = build_join_index(&other.rows, &spec.other_key);
        let rows = probe_join_rows(&spec, &self.rows, &index, &other.rows);
        RowRelation {
            cols: spec.out_cols,
            rows,
        }
    }

    /// Independent project through a `BTreeMap` keyed by cloned row keys,
    /// preserving first-seen group order and row-order folds.
    pub fn independent_project(&self, keep: &[Var]) -> RowRelation<P> {
        let key_idx: Vec<usize> = keep
            .iter()
            .map(|&v| self.col_index(v).expect("projection column missing"))
            .collect();
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut none: BTreeMap<Vec<Value>, P> = BTreeMap::new();
        for (row, p) in &self.rows {
            let key: Vec<Value> = key_idx.iter().map(|&k| row[k]).collect();
            match none.get_mut(&key) {
                Some(acc) => *acc = acc.mul(&p.complement()),
                None => {
                    none.insert(key.clone(), p.complement());
                    order.push(key);
                }
            }
        }
        let mut rows = Vec::with_capacity(order.len());
        for key in order {
            let p = none[&key].complement();
            rows.push((key, p));
        }
        RowRelation {
            cols: keep.to_vec(),
            rows,
        }
    }
}

struct RowJoinSpec {
    left_key: Vec<usize>,
    other_key: Vec<usize>,
    other_extra: Vec<usize>,
    out_cols: Vec<Var>,
}

fn row_join_spec(left: &[Var], right: &[Var]) -> RowJoinSpec {
    let common: Vec<Var> = left.iter().copied().filter(|c| right.contains(c)).collect();
    let left_key: Vec<usize> = common
        .iter()
        .map(|c| left.iter().position(|l| l == c).unwrap())
        .collect();
    let other_key: Vec<usize> = common
        .iter()
        .map(|c| right.iter().position(|r| r == c).unwrap())
        .collect();
    let other_extra: Vec<usize> = (0..right.len())
        .filter(|&i| !common.contains(&right[i]))
        .collect();
    let mut out_cols = left.to_vec();
    out_cols.extend(other_extra.iter().map(|&i| right[i]));
    RowJoinSpec {
        left_key,
        other_key,
        other_extra,
        out_cols,
    }
}

fn build_join_index<P>(
    rows: &[(Vec<Value>, P)],
    key: &[usize],
) -> BTreeMap<Vec<Value>, Vec<usize>> {
    let mut index: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
    for (i, (row, _)) in rows.iter().enumerate() {
        let k: Vec<Value> = key.iter().map(|&ki| row[ki]).collect();
        index.entry(k).or_default().push(i);
    }
    index
}

fn probe_join_rows<P: ProbValue>(
    spec: &RowJoinSpec,
    left_rows: &[(Vec<Value>, P)],
    index: &BTreeMap<Vec<Value>, Vec<usize>>,
    other_rows: &[(Vec<Value>, P)],
) -> Vec<(Vec<Value>, P)> {
    let mut out = Vec::new();
    for (row, p) in left_rows {
        let key: Vec<Value> = spec.left_key.iter().map(|&k| row[k]).collect();
        let Some(matches) = index.get(&key) else {
            continue;
        };
        for &j in matches {
            let (orow, op) = &other_rows[j];
            let mut values = row.clone();
            values.extend(spec.other_extra.iter().map(|&i| orow[i]));
            out.push((values, p.mul(op)));
        }
    }
    out
}

/// Execute `plan` row-at-a-time. Same contract as [`crate::execute`]; no
/// pushdown indexes, no columnar buffers.
pub fn row_execute<P: ProbValue>(db: &ProbDb, probs: &[P], plan: &PlanNode) -> RowRelation<P> {
    assert_eq!(probs.len(), db.num_tuples(), "probability vector length");
    match plan {
        PlanNode::Certain => RowRelation::certain(),
        PlanNode::Never => RowRelation::never(),
        PlanNode::Scan { atom } => {
            let cols = atom.vars();
            let rows = scan_rows(db, probs, atom, &cols, db.tuples_of(atom.rel));
            RowRelation { cols, rows }
        }
        PlanNode::ComplementScan { atom } => {
            let cols = atom.vars();
            let domain = complement_domain(db, atom);
            let total = complement_row_count(cols.len(), domain.len());
            let rows = complement_rows(db, probs, atom, &cols, &domain, 0..total);
            RowRelation { cols, rows }
        }
        PlanNode::Select { pred, input } => {
            let rel = row_execute(db, probs, input);
            let rows = rel
                .rows
                .iter()
                .filter(|(row, _)| eval_pred(pred, &rel.cols, row))
                .cloned()
                .collect();
            RowRelation {
                cols: rel.cols.clone(),
                rows,
            }
        }
        PlanNode::IndependentJoin { inputs } => {
            let mut acc = RowRelation::certain();
            for i in inputs {
                acc = acc.independent_join(&row_execute(db, probs, i));
            }
            acc
        }
        PlanNode::IndependentProject { keep, input } => {
            row_execute(db, probs, input).independent_project(keep)
        }
    }
}

/// `p(q)` of a Boolean plan, row-at-a-time.
pub fn row_query_probability(db: &ProbDb, plan: &PlanNode) -> f64 {
    row_execute(db, &db.prob_vector(), plan).scalar()
}

/// Ranked-plan read-off in the row layout: one `(head binding, marginal)`
/// pair per candidate, ordered as `head`.
pub fn row_ranked_probabilities<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    head: &[Var],
) -> Vec<(Vec<Value>, P)> {
    let rel = row_execute(db, probs, plan);
    let order: Vec<usize> = head
        .iter()
        .map(|&h| rel.col_index(h).expect("ranked plan carries head column"))
        .collect();
    rel.rows
        .iter()
        .map(|(row, p)| {
            (
                order.iter().map(|&i| row[i]).collect::<Vec<Value>>(),
                p.clone(),
            )
        })
        .collect()
}

/// The PR-2 scan kernel: filter the whole relation by the atom's constants
/// and repeated variables, emitting rows in tuple-id order.
fn scan_rows<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    atom: &Atom,
    cols: &[Var],
    ids: &[TupleId],
) -> Vec<(Vec<Value>, P)> {
    let mut out = Vec::new();
    'tuples: for &tid in ids {
        let tuple = db.tuple(tid);
        let mut bound: Vec<Option<Value>> = vec![None; cols.len()];
        for (pos, term) in atom.args.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if tuple.args[pos] != *c {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    let ci = cols.iter().position(|c| c == v).expect("own var");
                    match bound[ci] {
                        None => bound[ci] = Some(tuple.args[pos]),
                        Some(prev) => {
                            if prev != tuple.args[pos] {
                                continue 'tuples;
                            }
                        }
                    }
                }
            }
        }
        let row: Vec<Value> = bound.into_iter().map(|b| b.expect("all bound")).collect();
        out.push((row, probs[tid.0 as usize].clone()));
    }
    out
}

/// The PR-2 complement kernel over a range of linearized bindings.
fn complement_rows<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    atom: &Atom,
    cols: &[Var],
    domain: &[Value],
    range: Range<usize>,
) -> Vec<(Vec<Value>, P)> {
    let k = cols.len();
    let mut out = Vec::with_capacity(range.len());
    for i in range {
        let mut binding = vec![Value(0); k];
        let mut rem = i;
        for slot in binding.iter_mut().rev() {
            *slot = domain[rem % domain.len()];
            rem /= domain.len();
        }
        let args: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => binding[cols.iter().position(|c| c == v).expect("own var")],
            })
            .collect();
        let p = match db.find(atom.rel, &args) {
            Some(id) => probs[id.0 as usize].complement(),
            None => P::one(),
        };
        out.push((binding, p));
    }
    out
}

/// Morsel-parallel execution of the row-at-a-time plan — the PR-2 parallel
/// data plane, preserved as the multi-threaded bench baseline. Bit-for-bit
/// identical to [`row_execute`] at every thread count.
pub fn row_par_execute<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    pool: &Pool,
) -> RowRelation<P> {
    assert_eq!(probs.len(), db.num_tuples(), "probability vector length");
    match plan {
        PlanNode::Certain => RowRelation::certain(),
        PlanNode::Never => RowRelation::never(),
        PlanNode::Scan { atom } => {
            let cols = atom.vars();
            let ids = db.tuples_of(atom.rel);
            let chunks =
                pool.map_morsels(ids.len(), |r| scan_rows(db, probs, atom, &cols, &ids[r]));
            RowRelation {
                cols,
                rows: stitch(chunks),
            }
        }
        PlanNode::ComplementScan { atom } => {
            let cols = atom.vars();
            let domain = complement_domain(db, atom);
            let total = complement_row_count(cols.len(), domain.len());
            let chunks = pool.map_morsels(total, |r| {
                complement_rows(db, probs, atom, &cols, &domain, r)
            });
            RowRelation {
                cols,
                rows: stitch(chunks),
            }
        }
        PlanNode::Select { pred, input } => {
            let rel = row_par_execute(db, probs, input, pool);
            let chunks = pool.map_morsels(rel.rows.len(), |r| {
                rel.rows[r]
                    .iter()
                    .filter(|(row, _)| eval_pred(pred, &rel.cols, row))
                    .cloned()
                    .collect::<Vec<_>>()
            });
            RowRelation {
                cols: rel.cols.clone(),
                rows: stitch(chunks),
            }
        }
        PlanNode::IndependentJoin { inputs } => {
            let mut acc = RowRelation::certain();
            for i in inputs {
                let right = row_par_execute(db, probs, i, pool);
                let spec = row_join_spec(&acc.cols, &right.cols);
                let index = build_join_index(&right.rows, &spec.other_key);
                let chunks = pool.map_morsels(acc.rows.len(), |r| {
                    probe_join_rows(&spec, &acc.rows[r], &index, &right.rows)
                });
                acc = RowRelation {
                    cols: spec.out_cols,
                    rows: stitch(chunks),
                };
            }
            acc
        }
        PlanNode::IndependentProject { keep, input } => {
            // Grouping stays serial in the reference path: the PR-2
            // implementation's partitioned fold is superseded by the
            // columnar executor; the serial fold is bit-identical.
            row_par_execute(db, probs, input, pool).independent_project(keep)
        }
    }
}

fn stitch<T>(chunks: Vec<Vec<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_plan;
    use cq::{parse_query, Vocabulary};
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn row_reference_matches_its_parallel_form() {
        let mut rng = StdRng::seed_from_u64(42);
        for text in ["R(x), S(x,y)", "R(x), not T(x)", "S(x,y), x < y"] {
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).unwrap();
            let plan = build_plan(&q).unwrap();
            let opts = RandomDbOptions {
                domain: 3,
                tuples_per_relation: 10,
                prob_range: (0.1, 0.9),
            };
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let probs = db.prob_vector();
            let serial = row_execute(&db, &probs, &plan);
            for threads in [1, 2, 4] {
                let pool = Pool::with_grain(threads, 2);
                let par = row_par_execute(&db, &probs, &plan, &pool);
                assert_eq!(serial, par, "{text} at {threads} threads");
            }
        }
    }
}
