//! Plan rewriting: algebraic rules and cost-based join ordering.
//!
//! The compiler emits canonical plans; real engines (the paper's MystiQ
//! context) rewrite them before execution. Every rule here preserves the
//! plan's probability semantics:
//!
//! * **flatten** — `⋈(…, ⋈(a,b), …) → ⋈(…, a, b, …)` (independent join is
//!   associative),
//! * **unit** — drop `certain` inputs (unit of independent join), unwrap
//!   single-input joins,
//! * **merge-projects** — `Π_K(Π_L(x)) → Π_K(x)` when `K ⊆ L`: the
//!   complement-products compose, `1 − Π_g (1 − (1 − Π_{i∈g}(1−p_i))) =
//!   1 − Π_i (1 − p_i)`,
//! * **push-select** — selections commute with independent project when
//!   they only read kept columns (groups are filtered wholesale), and slide
//!   into the join input that binds all their columns,
//! * **join ordering** — inputs sorted by estimated cardinality so the
//!   running intermediate result stays small (a textbook heuristic; exact
//!   scan counts come from the database, selectivities are documented
//!   constants).
//!
//! The equivalence of every rewrite is fuzz-checked in `tests` by executing
//! original and optimized plans on random databases.

use crate::node::PlanNode;
use cq::{Atom, Term, Var};
use pdb::ProbDb;
use std::collections::BTreeSet;

/// Apply all semantics-preserving rules to a fixpoint (no cost model).
pub fn optimize(plan: &PlanNode) -> PlanNode {
    let mut cur = plan.clone();
    loop {
        let next = rewrite_once(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

/// As [`optimize`], then order join inputs by estimated cardinality
/// against `db` (ascending — smallest input first keeps intermediate
/// results small).
pub fn optimize_with_stats(plan: &PlanNode, db: &ProbDb) -> PlanNode {
    order_joins(&optimize(plan), db)
}

/// The output columns a node produces, computed statically.
pub fn columns(plan: &PlanNode) -> BTreeSet<Var> {
    match plan {
        PlanNode::Certain | PlanNode::Never => BTreeSet::new(),
        PlanNode::Scan { atom } | PlanNode::ComplementScan { atom } => {
            atom.vars().into_iter().collect()
        }
        PlanNode::Select { input, .. } => columns(input),
        PlanNode::IndependentJoin { inputs } => inputs.iter().flat_map(columns).collect(),
        PlanNode::IndependentProject { keep, .. } => keep.iter().copied().collect(),
    }
}

fn rewrite_once(plan: &PlanNode) -> PlanNode {
    // Rewrite children first, then apply the local rules bottom-up.
    let node = match plan {
        PlanNode::Certain
        | PlanNode::Never
        | PlanNode::Scan { .. }
        | PlanNode::ComplementScan { .. } => plan.clone(),
        PlanNode::Select { pred, input } => PlanNode::Select {
            pred: *pred,
            input: Box::new(rewrite_once(input)),
        },
        PlanNode::IndependentJoin { inputs } => PlanNode::IndependentJoin {
            inputs: inputs.iter().map(rewrite_once).collect(),
        },
        PlanNode::IndependentProject { keep, input } => PlanNode::IndependentProject {
            keep: keep.clone(),
            input: Box::new(rewrite_once(input)),
        },
    };
    apply_local(node)
}

fn apply_local(node: PlanNode) -> PlanNode {
    match node {
        PlanNode::IndependentJoin { inputs } => {
            // flatten + unit.
            let mut flat: Vec<PlanNode> = Vec::with_capacity(inputs.len());
            for i in inputs {
                match i {
                    PlanNode::IndependentJoin { inputs: nested } => flat.extend(nested),
                    PlanNode::Certain => {}
                    other => flat.push(other),
                }
            }
            match flat.len() {
                0 => PlanNode::Certain,
                1 => flat.pop().expect("one input"),
                _ => PlanNode::IndependentJoin { inputs: flat },
            }
        }
        PlanNode::IndependentProject { keep, input } => match *input {
            // merge-projects (sound when the outer keeps a subset).
            PlanNode::IndependentProject {
                keep: inner_keep,
                input: inner,
            } if keep.iter().all(|k| inner_keep.contains(k)) => {
                PlanNode::IndependentProject { keep, input: inner }
            }
            // Projecting constants stays constant.
            PlanNode::Certain => PlanNode::Certain,
            PlanNode::Never => PlanNode::Never,
            other => PlanNode::IndependentProject {
                keep,
                input: Box::new(other),
            },
        },
        PlanNode::Select { pred, input } => {
            let pred_vars: BTreeSet<Var> = pred
                .terms()
                .iter()
                .filter_map(|t| match t {
                    Term::Var(v) => Some(*v),
                    Term::Const(_) => None,
                })
                .collect();
            match *input {
                // push-select below project.
                PlanNode::IndependentProject { keep, input: inner }
                    if pred_vars.iter().all(|v| keep.contains(v)) =>
                {
                    PlanNode::IndependentProject {
                        keep,
                        input: Box::new(PlanNode::Select { pred, input: inner }),
                    }
                }
                // push-select into the first covering join input.
                PlanNode::IndependentJoin { inputs } => {
                    let covering = inputs
                        .iter()
                        .position(|i| pred_vars.iter().all(|v| columns(i).contains(v)));
                    match covering {
                        Some(idx) => {
                            let mut inputs = inputs;
                            let target = inputs.remove(idx);
                            inputs.insert(
                                idx,
                                PlanNode::Select {
                                    pred,
                                    input: Box::new(target),
                                },
                            );
                            PlanNode::IndependentJoin { inputs }
                        }
                        None => PlanNode::Select {
                            pred,
                            input: Box::new(PlanNode::IndependentJoin { inputs }),
                        },
                    }
                }
                PlanNode::Never => PlanNode::Never,
                other => PlanNode::Select {
                    pred,
                    input: Box::new(other),
                },
            }
        }
        other => other,
    }
}

/// The exact number of tuple ids the executor will visit for `atom`: the
/// smallest constant-pushdown posting list when the atom has constants,
/// the full relation otherwise — the same pure choice `ScanSpec::new`
/// makes, read here without running the scan. This is the cost model's
/// ground truth: posting-list sizes, not materialized row counts.
pub fn scan_estimate(db: &ProbDb, atom: &Atom) -> usize {
    let all = db.tuples_of(atom.rel).len();
    let mut best: Option<usize> = None;
    for (pos, term) in atom.args.iter().enumerate() {
        if let Term::Const(c) = term {
            let len = db.tuples_with(atom.rel, pos, *c).len();
            if best.is_none_or(|b| len < b) {
                best = Some(len);
            }
        }
    }
    best.unwrap_or(all)
}

/// Estimated output cardinality of a node against `db`. Scans start from
/// the **exact posting-list size** the executor will visit (see
/// [`scan_estimate`]) — constants beyond the pushed-down one and
/// repeated-variable positions still filter at the documented 1/3 guess;
/// selections keep 1/3; independent projects keep every group (an upper
/// bound: the group count is at most the row count); joins multiply and
/// divide by 2 per shared column — the classic System-R-flavoured guess,
/// sufficient for input ordering and build-side selection.
pub fn estimate_rows(plan: &PlanNode, db: &ProbDb) -> f64 {
    match plan {
        PlanNode::Certain => 1.0,
        PlanNode::Never => 0.0,
        PlanNode::Scan { atom } => {
            let consts = atom
                .args
                .iter()
                .filter(|t| matches!(t, Term::Const(_)))
                .count();
            // Repeated-variable positions: arity minus constants minus
            // distinct output columns.
            let repeated = atom.args.len() - consts - columns(plan).len();
            // One constant is priced exactly by the posting list; each
            // residual constant and repeated position filters at 1/3.
            let (base, residual) = if consts > 0 {
                (scan_estimate(db, atom) as f64, consts - 1 + repeated)
            } else {
                (db.tuples_of(atom.rel).len() as f64, repeated)
            };
            base / 3f64.powi(residual as i32)
        }
        PlanNode::ComplementScan { .. } => {
            // One row per domain binding of the distinct variables.
            (db.active_domain().len().max(1) as f64).powi(columns(plan).len() as i32)
        }
        PlanNode::Select { input, .. } => estimate_rows(input, db) / 3.0,
        PlanNode::IndependentProject { input, .. } => estimate_rows(input, db),
        PlanNode::IndependentJoin { inputs } => {
            let mut rows = 1.0;
            let mut seen: BTreeSet<Var> = BTreeSet::new();
            for i in inputs {
                let shared = columns(i).intersection(&seen).count();
                rows *= estimate_rows(i, db) / 2f64.powi(shared as i32);
                seen.extend(columns(i));
            }
            rows
        }
    }
}

/// Minimum posting-list size at which hash-sharding a plan's scans pays
/// for its per-shard scaffolding. Deliberately low so mid-size test
/// workloads still exercise the sharded path under `ENGINE_SHARDS`; tiny
/// inputs collapse to the monolithic plane.
pub const SHARD_MIN_ROWS: usize = 256;

/// The shard fan-out the cost model grants `plan`: the `requested` count
/// when at least one scan will visit [`SHARD_MIN_ROWS`] or more tuple ids
/// (per [`scan_estimate`] — posting lists, not materialized counts),
/// otherwise 1. A pure function of `(plan, db, requested)`, so every
/// executor and refresh path lands on the same data-plane layout.
pub fn plan_shard_fanout(plan: &PlanNode, db: &ProbDb, requested: usize) -> usize {
    if requested <= 1 {
        return 1;
    }
    if widest_scan(plan, db) >= SHARD_MIN_ROWS {
        requested
    } else {
        1
    }
}

/// The largest tuple-id list any scan in `plan` will visit. Complement
/// scans contribute nothing: their rows are generated bindings with no
/// tuple ids, so they never shard.
fn widest_scan(plan: &PlanNode, db: &ProbDb) -> usize {
    match plan {
        PlanNode::Certain | PlanNode::Never | PlanNode::ComplementScan { .. } => 0,
        PlanNode::Scan { atom } => scan_estimate(db, atom),
        PlanNode::Select { input, .. } | PlanNode::IndependentProject { input, .. } => {
            widest_scan(input, db)
        }
        PlanNode::IndependentJoin { inputs } => {
            inputs.iter().map(|i| widest_scan(i, db)).max().unwrap_or(0)
        }
    }
}

fn order_joins(plan: &PlanNode, db: &ProbDb) -> PlanNode {
    match plan {
        PlanNode::Certain
        | PlanNode::Never
        | PlanNode::Scan { .. }
        | PlanNode::ComplementScan { .. } => plan.clone(),
        PlanNode::Select { pred, input } => PlanNode::Select {
            pred: *pred,
            input: Box::new(order_joins(input, db)),
        },
        PlanNode::IndependentProject { keep, input } => PlanNode::IndependentProject {
            keep: keep.clone(),
            input: Box::new(order_joins(input, db)),
        },
        PlanNode::IndependentJoin { inputs } => {
            let mut ordered: Vec<PlanNode> = inputs.iter().map(|i| order_joins(i, db)).collect();
            ordered.sort_by(|a, b| {
                estimate_rows(a, db)
                    .partial_cmp(&estimate_rows(b, db))
                    .expect("finite estimates")
            });
            PlanNode::IndependentJoin { inputs: ordered }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_plan;
    use crate::exec::query_probability;
    use cq::{parse_query, Pred, Query, Vocabulary};
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn parse(s: &str) -> (Vocabulary, Query) {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, s).unwrap();
        (voc, q)
    }

    #[test]
    fn flatten_and_unit() {
        let (_, q) = parse("R(x)");
        let scan = PlanNode::Scan {
            atom: q.atoms[0].clone(),
        };
        let nested = PlanNode::IndependentJoin {
            inputs: vec![
                PlanNode::Certain,
                PlanNode::IndependentJoin {
                    inputs: vec![scan.clone(), PlanNode::Certain],
                },
            ],
        };
        assert_eq!(optimize(&nested), scan);
    }

    #[test]
    fn empty_join_is_certain() {
        let j = PlanNode::IndependentJoin {
            inputs: vec![PlanNode::Certain, PlanNode::Certain],
        };
        assert_eq!(optimize(&j), PlanNode::Certain);
    }

    #[test]
    fn cascaded_projects_merge() {
        let (_, q) = parse("S(x,y)");
        let x = q.vars()[0];
        let scan = PlanNode::Scan {
            atom: q.atoms[0].clone(),
        };
        let cascade = PlanNode::IndependentProject {
            keep: vec![],
            input: Box::new(PlanNode::IndependentProject {
                keep: vec![x],
                input: Box::new(scan.clone()),
            }),
        };
        let opt = optimize(&cascade);
        assert_eq!(
            opt,
            PlanNode::IndependentProject {
                keep: vec![],
                input: Box::new(scan)
            }
        );
    }

    #[test]
    fn merged_projects_compute_the_same_probability() {
        // The merge rule's soundness, checked numerically.
        let (voc, q) = parse("S(x,y)");
        let x = q.vars()[0];
        let scan = PlanNode::Scan {
            atom: q.atoms[0].clone(),
        };
        let cascade = PlanNode::IndependentProject {
            keep: vec![],
            input: Box::new(PlanNode::IndependentProject {
                keep: vec![x],
                input: Box::new(scan),
            }),
        };
        let merged = optimize(&cascade);
        let mut rng = StdRng::seed_from_u64(3);
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 6,
            prob_range: (0.1, 0.9),
        };
        for _ in 0..5 {
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let a = query_probability(&db, &cascade);
            let b = query_probability(&db, &merged);
            assert!((a - b).abs() < 1e-12, "cascade {a} vs merged {b}");
        }
    }

    #[test]
    fn select_pushes_below_project_and_into_join() {
        let (_, q) = parse("R(x), S(x,y), x != 1");
        let x = q.vars()[0];
        let scan_r = PlanNode::Scan {
            atom: q.atoms[0].clone(),
        };
        let scan_s = PlanNode::Scan {
            atom: q.atoms[1].clone(),
        };
        let pred: Pred = q.preds[0];
        let plan = PlanNode::Select {
            pred,
            input: Box::new(PlanNode::IndependentProject {
                keep: vec![x],
                input: Box::new(PlanNode::IndependentJoin {
                    inputs: vec![scan_r.clone(), scan_s],
                }),
            }),
        };
        let opt = optimize(&plan);
        // The select must now sit directly above a scan inside the join.
        match &opt {
            PlanNode::IndependentProject { input, .. } => match &**input {
                PlanNode::IndependentJoin { inputs } => {
                    assert!(inputs
                        .iter()
                        .any(|i| matches!(i, PlanNode::Select { input, .. } if matches!(**input, PlanNode::Scan { .. }))));
                }
                other => panic!("expected join, got {other:?}"),
            },
            other => panic!("expected project on top, got {other:?}"),
        }
    }

    #[test]
    fn columns_are_computed_statically() {
        let (_, q) = parse("R(x), S(x,y)");
        let plan = build_plan(&q).unwrap();
        assert!(columns(&plan).is_empty(), "Boolean plan has no columns");
        if let PlanNode::IndependentProject { input, .. } = &plan {
            assert_eq!(columns(input).len(), 1);
        }
    }

    #[test]
    fn optimizer_is_idempotent() {
        for text in [
            "R(x), S(x,y)",
            "R(x), S(x,y), U(x,y,z), x != 1",
            "R(x), T(z,w)",
        ] {
            let (_, q) = parse(text);
            let plan = build_plan(&q).unwrap();
            let once = optimize(&plan);
            assert_eq!(optimize(&once), once, "not idempotent on {text}");
        }
    }

    #[test]
    fn optimized_plans_preserve_probabilities() {
        let shapes = [
            "R(x), S(x,y)",
            "R(x), S(x,y), U(x,y,z)",
            "R(x), S(x,y), x < y",
            "R(x), S(x,y), x != 1",
            "R(x), T(z,w), S(x,y)",
            "S(u,v), T(u,v), u < v",
        ];
        let mut rng = StdRng::seed_from_u64(0x0071);
        for shape in shapes {
            let (voc, q) = parse(shape);
            let plan = build_plan(&q).unwrap();
            let opts = RandomDbOptions {
                domain: 3,
                tuples_per_relation: 4,
                prob_range: (0.05, 0.95),
            };
            for round in 0..4 {
                let db = random_db_for_query(&q, &voc, opts, &mut rng);
                let base = query_probability(&db, &plan);
                let opt = query_probability(&db, &optimize(&plan));
                let opt_stats = query_probability(&db, &optimize_with_stats(&plan, &db));
                assert!(
                    (base - opt).abs() < 1e-12,
                    "{shape} round {round}: {base} vs optimized {opt}"
                );
                assert!(
                    (base - opt_stats).abs() < 1e-12,
                    "{shape} round {round}: {base} vs stats-optimized {opt_stats}"
                );
            }
        }
    }

    #[test]
    fn join_ordering_puts_small_inputs_first() {
        let (voc, q) = parse("R(x), S(x,y)");
        let r = voc.find_relation("R").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        // R much larger than S.
        for i in 0..20u64 {
            db.insert(r, vec![cq::Value(i)], 0.5);
        }
        db.insert(s, vec![cq::Value(0), cq::Value(1)], 0.5);
        let plan = build_plan(&q).unwrap();
        let opt = optimize_with_stats(&plan, &db);
        if let PlanNode::IndependentProject { input, .. } = &opt {
            if let PlanNode::IndependentJoin { inputs } = &**input {
                let first = estimate_rows(&inputs[0], &db);
                let second = estimate_rows(&inputs[1], &db);
                assert!(
                    first <= second,
                    "join inputs not ordered: {first} > {second}"
                );
                return;
            }
        }
        panic!("unexpected plan shape: {opt:?}");
    }

    #[test]
    fn scan_estimates_read_posting_lists() {
        let (voc, q) = parse("S(1,y)");
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        // 3 tuples match S(1, _) out of 20.
        for i in 0..20u64 {
            let key = if i < 3 { 1 } else { i + 10 };
            db.insert(s, vec![cq::Value(key), cq::Value(i)], 0.5);
        }
        let atom = &q.atoms[0];
        assert_eq!(scan_estimate(&db, atom), 3, "posting list is exact");
        let est = estimate_rows(&PlanNode::Scan { atom: atom.clone() }, &db);
        assert_eq!(est, 3.0, "one constant priced exactly, no residuals");
    }

    #[test]
    fn shard_fanout_collapses_on_tiny_inputs() {
        let (voc, q) = parse("R(x), S(x,y)");
        let r = voc.find_relation("R").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        for i in 0..10u64 {
            db.insert(r, vec![cq::Value(i)], 0.5);
            db.insert(s, vec![cq::Value(i), cq::Value(i + 1)], 0.5);
        }
        let plan = build_plan(&q).unwrap();
        // Ten-tuple scans are below the threshold: collapse to 1.
        assert_eq!(plan_shard_fanout(&plan, &db, 4), 1);
        assert_eq!(plan_shard_fanout(&plan, &db, 1), 1);
        // Grow one relation past the threshold: the request is granted.
        for i in 10..(SHARD_MIN_ROWS as u64 + 10) {
            db.insert(r, vec![cq::Value(i)], 0.5);
        }
        assert_eq!(plan_shard_fanout(&plan, &db, 4), 4);
        assert_eq!(plan_shard_fanout(&plan, &db, 1), 1, "requested 1 stays 1");
    }
}
