//! Compiling hierarchical self-join-free queries to safe plans.
//!
//! The compiler is the set-at-a-time reading of the Eq. 3 recurrence. For a
//! connected component `f` with root class `[x]` (the variables occurring in
//! every sub-goal):
//!
//! 1. sub-goals whose variables are exactly `⌈x⌉` become scans,
//! 2. the remaining sub-goals split into groups connected through variables
//!    below `[x]`; each group is compiled recursively and independent-
//!    projected back down to the columns of this level,
//! 3. everything is independent-joined (disjoint relation symbols — no
//!    self-joins), arithmetic predicates are applied as selections at the
//!    first level where all their variables are in scope,
//!
//! and the component's plan is independent-projected to the enclosing
//! scope. A Boolean query is the independent join of its components' scalar
//! plans.

use crate::node::PlanNode;
use cq::{Pred, Query, Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Why a query admits no extensional safe plan (here: compiler scope — the
/// Theorem 1.3 tractable fragment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// Non-hierarchical queries are #P-hard (Theorem 1.4) — no safe plan
    /// exists unless P = #P.
    NotHierarchical,
    /// Self-joins break the independence discipline of the extensional
    /// operators; use the coverage-based evaluator.
    SelfJoin,
    /// A component has no root variable (defensive; cannot happen for
    /// hierarchical queries).
    NoRoot,
    /// A head variable the ranked compiler cannot carry: it must occur in
    /// at least one positive sub-goal (candidates are enumerated from
    /// possible tuples, not the whole domain).
    UnsupportedHead(Var),
    /// An arithmetic predicate found no level where all its variables are
    /// in scope (e.g. a comparison across independent components).
    StrandedPredicate,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NotHierarchical => write!(f, "query is not hierarchical"),
            PlanError::SelfJoin => write!(f, "query has self-joins"),
            PlanError::NoRoot => write!(f, "component has no root variable"),
            PlanError::UnsupportedHead(v) => {
                write!(f, "head variable {v} occurs in no positive sub-goal")
            }
            PlanError::StrandedPredicate => {
                write!(f, "a predicate has no level where all its variables bind")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Is the query hierarchical (Definition 1.2) *relative to* the `fixed`
/// variables? Fixed (head) variables act as constants: only the
/// existential variables must form a hierarchy. With `fixed = ∅` this is
/// the standard check; the crate keeps its own copy so the plan language
/// has no dependency on the classifier crate (the engine depends on us,
/// not the other way around).
fn is_hierarchical_wrt(q: &Query, fixed: &BTreeSet<Var>) -> bool {
    let vars: Vec<Var> = q
        .vars()
        .into_iter()
        .filter(|v| !fixed.contains(v))
        .collect();
    for (i, &x) in vars.iter().enumerate() {
        for &y in &vars[i + 1..] {
            let sx = q.sg(x);
            let sy = q.sg(y);
            let inter = sx.intersection(&sy).count();
            if inter > 0 && inter < sx.len() && inter < sy.len() {
                return false; // sg(x) and sg(y) cross
            }
        }
    }
    true
}

/// Compile a hierarchical self-join-free Boolean conjunctive query —
/// negated sub-goals allowed (Theorem 3.11) — to an extensional safe plan.
pub fn build_plan(q: &Query) -> Result<PlanNode, PlanError> {
    build_ranked_plan(q, &[])
}

/// Compile a *non-Boolean* query with head variables `head` to a single
/// extensional plan whose output relation has one row per candidate head
/// binding, carrying that candidate's marginal probability — the whole
/// ranked answer set in one set-at-a-time execution.
///
/// Head variables are treated as constants for the safety analysis (the
/// residual `q[ā/h̄]` must be hierarchical and self-join-free) and carried
/// through every operator as plain join/group-by columns, exactly the safe
/// non-Boolean plans MystiQ runs inside the database engine. With
/// `head = []` this is [`build_plan`].
pub fn build_ranked_plan(q: &Query, head: &[Var]) -> Result<PlanNode, PlanError> {
    let Some(qn) = q.normalize() else {
        return Ok(PlanNode::Never);
    };
    let fixed: BTreeSet<Var> = head.iter().copied().collect();
    for &h in head {
        if !qn.atoms.iter().any(|a| !a.negated && a.contains_var(h)) {
            return Err(PlanError::UnsupportedHead(h));
        }
    }
    if !is_hierarchical_wrt(&qn, &fixed) {
        return Err(PlanError::NotHierarchical);
    }
    if qn.has_self_join() {
        return Err(PlanError::SelfJoin);
    }
    let mut inputs = Vec::new();
    // Split into groups connected through *existential* variables; groups
    // sharing only head variables are independent given the head binding,
    // so the natural join on head columns multiplies correctly.
    let all: Vec<usize> = (0..qn.atoms.len()).collect();
    for f in group_by_deep_vars(&qn, &all, &fixed) {
        let fvars: BTreeSet<Var> = f.vars().into_iter().collect();
        if fvars.iter().all(|v| fixed.contains(v)) {
            // Only head variables or ground: scans carry the head columns
            // (or the scalar) directly. Predicates over head variables are
            // applied to the joined answer relation below.
            for atom in &f.atoms {
                inputs.push(scan_of(atom));
            }
        } else {
            let node = plan_scoped(&f, &BTreeSet::new(), &fixed)?;
            let keep: Vec<Var> = fixed
                .iter()
                .copied()
                .filter(|v| fvars.contains(v))
                .collect();
            inputs.push(PlanNode::IndependentProject {
                keep,
                input: Box::new(node),
            });
        }
    }
    let mut node = join_of(inputs);
    // Predicates over head variables (and constants) apply to the final
    // answer relation.
    for p in &qn.preds {
        let pvars: Vec<Var> = pred_vars(p);
        if !pvars.is_empty() && pvars.iter().all(|v| fixed.contains(v)) {
            node = PlanNode::Select {
                pred: *p,
                input: Box::new(node),
            };
        }
    }
    // Every predicate must have found a level where its variables bind;
    // otherwise the plan would silently drop it.
    if count_selects(&node) != qn.preds.len() {
        return Err(PlanError::StrandedPredicate);
    }
    Ok(node)
}

fn pred_vars(p: &Pred) -> Vec<Var> {
    p.terms()
        .iter()
        .filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
        .collect()
}

fn count_selects(n: &PlanNode) -> usize {
    match n {
        PlanNode::Certain
        | PlanNode::Never
        | PlanNode::Scan { .. }
        | PlanNode::ComplementScan { .. } => 0,
        PlanNode::Select { input, .. } => 1 + count_selects(input),
        PlanNode::IndependentProject { input, .. } => count_selects(input),
        PlanNode::IndependentJoin { inputs } => inputs.iter().map(count_selects).sum(),
    }
}

fn scan_of(atom: &cq::Atom) -> PlanNode {
    if atom.negated {
        // A positive copy drives the complement scan; the executor iterates
        // the evaluation domain and emits 1 − p(tuple).
        let mut positive = atom.clone();
        positive.negated = false;
        PlanNode::ComplementScan { atom: positive }
    } else {
        PlanNode::Scan { atom: atom.clone() }
    }
}

fn join_of(mut inputs: Vec<PlanNode>) -> PlanNode {
    match inputs.len() {
        0 => PlanNode::Certain,
        1 => inputs.pop().expect("one input"),
        _ => PlanNode::IndependentJoin { inputs },
    }
}

/// Plan a connected sub-query `g` all of whose atoms contain every
/// existential variable of `scope`. Head variables in `fixed` are carried
/// as columns but never act as root variables. Output columns: the
/// existential variables occurring in every atom of `g`, plus the fixed
/// variables `g` mentions.
fn plan_scoped(
    g: &Query,
    scope: &BTreeSet<Var>,
    fixed: &BTreeSet<Var>,
) -> Result<PlanNode, PlanError> {
    // `here`: the root class at this level — existential variables in
    // every atom.
    let here: BTreeSet<Var> = g
        .vars()
        .into_iter()
        .filter(|&v| !fixed.contains(&v) && g.sg(v).len() == g.atoms.len())
        .collect();
    if !here.iter().any(|v| !scope.contains(v)) {
        // No new root variable: `g` would not be hierarchical.
        return Err(PlanError::NoRoot);
    }

    // Local atoms: exactly the `here` variables plus (possibly) fixed
    // variables; every atom has ⊇ here among its existential variables.
    let mut inputs: Vec<PlanNode> = Vec::new();
    let mut deeper: Vec<usize> = Vec::new();
    for (i, atom) in g.atoms.iter().enumerate() {
        let avars: BTreeSet<Var> = atom
            .vars()
            .into_iter()
            .filter(|v| !fixed.contains(v))
            .collect();
        if avars == here {
            inputs.push(scan_of(atom));
        } else {
            deeper.push(i);
        }
    }

    // Group the deeper atoms by connectivity through variables below
    // `here`, then recurse per group, projecting each child back down to
    // this level's columns (fixed columns ride along).
    let ignore: BTreeSet<Var> = here.union(fixed).copied().collect();
    for group in group_by_deep_vars(g, &deeper, &ignore) {
        let gvars: BTreeSet<Var> = group.vars().into_iter().collect();
        let child = plan_scoped(&group, &here, fixed)?;
        let keep: BTreeSet<Var> = here
            .iter()
            .chain(fixed.intersection(&gvars))
            .copied()
            .collect();
        inputs.push(PlanNode::IndependentProject {
            keep: keep.into_iter().collect(),
            input: Box::new(child),
        });
    }

    let mut node = join_of(inputs);

    // Selections: predicates that become evaluable at this level. Fixed
    // variables mentioned by `g` are columns here too.
    let gvars: BTreeSet<Var> = g.vars().into_iter().collect();
    let avail: BTreeSet<Var> = here
        .iter()
        .chain(fixed.intersection(&gvars))
        .copied()
        .collect();
    for p in &g.preds {
        if pred_attaches_here(p, &avail, scope) {
            node = PlanNode::Select {
                pred: *p,
                input: Box::new(node),
            };
        }
    }
    Ok(node)
}

/// Does predicate `p` first become fully bound at the level whose columns
/// are `avail` (and was not already bound in the enclosing `scope`)?
fn pred_attaches_here(p: &Pred, avail: &BTreeSet<Var>, scope: &BTreeSet<Var>) -> bool {
    let vars = pred_vars(p);
    !vars.is_empty()
        && vars.iter().all(|v| avail.contains(v))
        && !vars.iter().all(|v| scope.contains(v))
}

/// Split the atoms at `indices` into connected groups, where connectivity
/// ignores the `here` variables (they occur everywhere). Each group keeps
/// the predicates mentioning its variables.
fn group_by_deep_vars(g: &Query, indices: &[usize], here: &BTreeSet<Var>) -> Vec<Query> {
    let n = indices.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let deep_vars: BTreeSet<Var> = indices
        .iter()
        .flat_map(|&i| g.atoms[i].vars())
        .filter(|v| !here.contains(v))
        .collect();
    for &v in &deep_vars {
        let members: Vec<usize> = (0..n)
            .filter(|&k| g.atoms[indices[k]].contains_var(v))
            .collect();
        for w in members.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            parent[a] = b;
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for k in 0..n {
        let r = find(&mut parent, k);
        groups.entry(r).or_default().push(k);
    }
    groups
        .into_values()
        .map(|ks| {
            let atoms: Vec<_> = ks.iter().map(|&k| g.atoms[indices[k]].clone()).collect();
            let vars: BTreeSet<Var> = atoms.iter().flat_map(|a| a.vars()).collect();
            let preds: Vec<Pred> = g
                .preds
                .iter()
                .filter(|p| {
                    p.terms()
                        .iter()
                        .any(|t| matches!(t, Term::Var(v) if vars.contains(v) && !here.contains(v)))
                })
                .copied()
                .collect();
            Query::new(atoms, preds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::{parse_query, Vocabulary};

    fn plan(s: &str) -> Result<PlanNode, PlanError> {
        let mut voc = Vocabulary::new();
        build_plan(&parse_query(&mut voc, s).unwrap())
    }

    #[test]
    fn q_hier_plan_shape() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let p = build_plan(&q).unwrap();
        let rendered = p.display(&voc);
        assert_eq!(
            rendered,
            "independent-project []\n  independent-join\n    scan R(x0)\n    independent-project [x0]\n      scan S(x0,x1)\n"
        );
    }

    #[test]
    fn errors() {
        assert_eq!(
            plan("R(x), S(x,y), T(y)").unwrap_err(),
            PlanError::NotHierarchical
        );
        assert_eq!(plan("R(x,y), R(y,z)").unwrap_err(), PlanError::SelfJoin);
    }

    #[test]
    fn unsatisfiable_query_is_never() {
        assert_eq!(plan("R(x), x < x").unwrap(), PlanNode::Never);
    }

    #[test]
    fn truth_is_certain() {
        assert_eq!(build_plan(&Query::truth()).unwrap(), PlanNode::Certain);
    }

    #[test]
    fn ground_atoms_become_scans() {
        let p = plan("R('a')").unwrap();
        assert!(matches!(p, PlanNode::Scan { .. }));
    }

    #[test]
    fn predicates_become_selects() {
        let p = plan("S(x,y), x < y").unwrap();
        // select must appear somewhere in the tree
        fn has_select(n: &PlanNode) -> bool {
            match n {
                PlanNode::Select { .. } => true,
                PlanNode::IndependentJoin { inputs } => inputs.iter().any(has_select),
                PlanNode::IndependentProject { input, .. } => has_select(input),
                _ => false,
            }
        }
        assert!(has_select(&p));
    }

    #[test]
    fn multi_component_plan_is_join_of_scalars() {
        let p = plan("R(x), T(z,w)").unwrap();
        match p {
            PlanNode::IndependentJoin { inputs } => {
                assert_eq!(inputs.len(), 2);
                for i in inputs {
                    assert!(
                        matches!(i, PlanNode::IndependentProject { ref keep, .. } if keep.is_empty())
                    );
                }
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn root_class_with_two_variables() {
        // u ≡ v: both in every atom.
        let p = plan("S(u,v), T(u,v)").unwrap();
        match &p {
            PlanNode::IndependentProject { keep, input } => {
                assert!(keep.is_empty());
                assert!(matches!(**input, PlanNode::IndependentJoin { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
