//! Morsel-driven parallel execution of safe plans.
//!
//! [`par_execute`] runs the same [`PlanNode`] language as [`crate::execute`]
//! on a scoped-thread worker [`Pool`] (see the `exec-parallel` crate), one
//! operator at a time, parallel *within* each operator:
//!
//! * **scans** and **complement scans** partition their input (tuple ids,
//!   linearized bindings) into morsels pulled from a shared cursor;
//! * **joins** hash-partition the build side across workers (each key ends
//!   up wholly in one partition, preserving per-key insertion order), then
//!   probe in parallel over morsels of the probe side;
//! * **independent projects** — the `1 − Π(1−p)` aggregation at the core of
//!   the extensional operators — hash-partition *groups* across workers and
//!   combine the per-partition partial products, so every group is folded
//!   by exactly one worker in row order.
//!
//! The invariant throughout (and the property the agreement tests pin
//! down): for any plan, database, and thread count, `par_execute` returns
//! **bit-for-bit** the relation the serial executor returns — same row
//! order, same `f64` values. Morsel outputs are stitched in morsel order,
//! group folds keep the serial multiplication order, and worker scheduling
//! never leaks into results. Parallelism changes wall time, not answers.

use crate::exec::{complement_domain, complement_row_count, complement_rows, eval_pred, scan_rows};
use crate::node::PlanNode;
use crate::relation::{build_join_index, join_spec, probe_join_rows, ProbRelation};
use cq::{Atom, Pred, Value, Var};
use exec_parallel::{ExecStats, Pool, DEFAULT_GRAIN};
use lineage::ProbValue;
use pdb::ProbDb;
use std::collections::BTreeMap;

/// Tuning for one parallel execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParOptions {
    /// Worker threads (1 = inline serial dispatch, no spawning).
    pub threads: usize,
    /// Morsel size in rows; tests shrink it to force multi-morsel
    /// schedules on small inputs.
    pub grain: usize,
}

impl ParOptions {
    pub fn new(threads: usize) -> Self {
        ParOptions {
            threads,
            grain: DEFAULT_GRAIN,
        }
    }

    pub fn with_grain(threads: usize, grain: usize) -> Self {
        ParOptions { threads, grain }
    }

    /// The pool this configuration describes.
    pub fn pool(&self) -> Pool {
        Pool::with_grain(self.threads, self.grain)
    }
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions::new(1)
    }
}

/// Execute `plan` over `db` on `pool`, with tuple probabilities in
/// [`pdb::TupleId`] order. Returns exactly what [`crate::execute`] returns
/// — same rows, same order, same bits — for every thread count.
pub fn par_execute<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    pool: &Pool,
) -> ProbRelation<P> {
    assert_eq!(probs.len(), db.num_tuples(), "probability vector length");
    match plan {
        PlanNode::Certain => ProbRelation::certain(),
        PlanNode::Never => ProbRelation::never(),
        PlanNode::Scan { atom } => par_scan(db, probs, atom, pool),
        PlanNode::ComplementScan { atom } => par_complement_scan(db, probs, atom, pool),
        PlanNode::Select { pred, input } => {
            let rel = par_execute(db, probs, input, pool);
            par_select(&rel, pred, pool)
        }
        PlanNode::IndependentJoin { inputs } => {
            let mut acc = ProbRelation::certain();
            for i in inputs {
                let right = par_execute(db, probs, i, pool);
                acc = par_join(&acc, &right, pool);
            }
            acc
        }
        PlanNode::IndependentProject { keep, input } => {
            let rel = par_execute(db, probs, input, pool);
            par_project(&rel, keep, pool)
        }
    }
}

/// `p(q)` of a Boolean plan in `f64` arithmetic, executed in parallel;
/// also reports how the work spread over the workers.
pub fn par_query_probability(db: &ProbDb, plan: &PlanNode, opts: ParOptions) -> (f64, ExecStats) {
    let pool = opts.pool();
    let p = par_execute(db, &db.prob_vector(), plan, &pool).scalar();
    (p, pool.stats())
}

/// Parallel counterpart of [`crate::ranked_probabilities`]: execute a
/// ranked plan with the answer set partitioned across workers and return
/// one `(head binding, marginal probability)` pair per candidate, in the
/// serial path's exact order. Callers wanting per-thread counters can run
/// [`par_execute`] on their own [`Pool`] and read its stats.
///
/// # Panics
/// If `plan` does not carry every variable of `head` as an output column.
pub fn par_ranked_probabilities<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    head: &[Var],
    opts: ParOptions,
) -> Vec<(Vec<Value>, P)> {
    let pool = opts.pool();
    let rel = par_execute(db, probs, plan, &pool);
    crate::exec::project_head(&rel, head)
}

/// Partitioned relation scan: morsels over the relation's tuple ids.
fn par_scan<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    atom: &Atom,
    pool: &Pool,
) -> ProbRelation<P> {
    assert!(!atom.negated, "plans scan positive atoms only");
    let cols = atom.vars();
    let ids = db.tuples_of(atom.rel);
    let chunks = pool.map_morsels(ids.len(), |r| scan_rows(db, probs, atom, &cols, &ids[r]));
    ProbRelation {
        cols,
        rows: stitch(chunks),
    }
}

/// Partitioned complement scan: morsels over the linearized binding space.
fn par_complement_scan<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    atom: &Atom,
    pool: &Pool,
) -> ProbRelation<P> {
    let cols = atom.vars();
    let domain = complement_domain(db, atom);
    let total = complement_row_count(cols.len(), domain.len());
    let chunks = pool.map_morsels(total, |r| {
        complement_rows(db, probs, atom, &cols, &domain, r)
    });
    ProbRelation {
        cols,
        rows: stitch(chunks),
    }
}

/// Partitioned filter: morsels over the input rows.
fn par_select<P: ProbValue + Send + Sync>(
    rel: &ProbRelation<P>,
    pred: &Pred,
    pool: &Pool,
) -> ProbRelation<P> {
    let chunks = pool.map_morsels(rel.rows.len(), |r| {
        rel.rows[r]
            .iter()
            .filter(|(row, _)| eval_pred(pred, &rel.cols, row))
            .cloned()
            .collect::<Vec<_>>()
    });
    ProbRelation {
        cols: rel.cols.clone(),
        rows: stitch(chunks),
    }
}

/// Hash-partitioned independent join: the build side is partitioned by key
/// hash across workers (each key lands wholly in one partition with its
/// row order intact), the probe side streams through in morsels.
fn par_join<P: ProbValue + Send + Sync>(
    left: &ProbRelation<P>,
    right: &ProbRelation<P>,
    pool: &Pool,
) -> ProbRelation<P> {
    let spec = join_spec(&left.cols, &right.cols);
    // Build. Partitioning pays only when the build side is large; the
    // serial build produces the identical index either way.
    let index = if right.rows.len() > pool.grain() && pool.threads() > 1 {
        let parts = pool.threads();
        // Hash rows in parallel morsels, bucket their indices, then let
        // each worker index only its own rows (not a full scan each).
        let hash_chunks = pool.map_morsels(right.rows.len(), |r| {
            right.rows[r]
                .iter()
                .map(|(row, _)| hash_key(row, &spec.other_key))
                .collect::<Vec<u64>>()
        });
        let owners = partition_rows(&stitch(hash_chunks), parts);
        let maps = pool.map_partitions(parts, |p| {
            let mut m: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
            // `owners[p]` is in ascending row order, so per-key index
            // vectors keep the serial build's insertion order.
            for &i in &owners[p] {
                let i = i as usize;
                let row = &right.rows[i].0;
                let key: Vec<Value> = spec.other_key.iter().map(|&k| row[k]).collect();
                m.entry(key).or_default().push(i);
            }
            m
        });
        // Partitions hold disjoint keys: merging is a plain union.
        let mut index: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
        for m in maps {
            index.extend(m);
        }
        index
    } else {
        build_join_index(&right.rows, &spec.other_key)
    };
    // Probe.
    let chunks = pool.map_morsels(left.rows.len(), |r| {
        probe_join_rows(&spec, &left.rows[r], &index, &right.rows)
    });
    ProbRelation {
        cols: spec.out_cols,
        rows: stitch(chunks),
    }
}

/// Parallel independent project: groups are hash-partitioned across
/// workers; each worker folds its groups' rows **in row order** (the
/// serial multiplication order), and the per-partition partial results are
/// combined by first-seen row index — disjoint groups, so combining is
/// concatenation, not re-multiplication, and `f64` bits are preserved.
fn par_project<P: ProbValue + Send + Sync>(
    rel: &ProbRelation<P>,
    keep: &[Var],
    pool: &Pool,
) -> ProbRelation<P> {
    // Sub-morsel inputs are not worth a fan-out; the serial fold is the
    // same computation (bit for bit), minus the partition scaffolding.
    if pool.threads() == 1 || rel.rows.len() <= pool.grain() {
        return rel.independent_project(keep);
    }
    let key_idx: Vec<usize> = keep
        .iter()
        .map(|&v| rel.col_index(v).expect("projection column missing"))
        .collect();
    // Phase 1: group hashes, one pass in parallel morsels (order-stable).
    let hash_chunks = pool.map_morsels(rel.rows.len(), |r| {
        rel.rows[r]
            .iter()
            .map(|(row, _)| hash_key(row, &key_idx))
            .collect::<Vec<u64>>()
    });
    let owners = partition_rows(&stitch(hash_chunks), pool.threads());
    // Phase 2: each worker owns the groups hashing to its partitions and
    // folds `Π(1−p)` over their rows in row order, touching only its own
    // rows (`owners[part]` ascends, preserving the serial fold order).
    let parts = pool.threads();
    let partials = pool.map_partitions(parts, |part| {
        let mut none: std::collections::HashMap<Vec<Value>, (usize, P)> =
            std::collections::HashMap::new();
        for &i in &owners[part] {
            let i = i as usize;
            let (row, p) = &rel.rows[i];
            let key: Vec<Value> = key_idx.iter().map(|&k| row[k]).collect();
            match none.get_mut(&key) {
                Some((_, acc)) => *acc = acc.mul(&p.complement()),
                None => {
                    none.insert(key, (i, p.complement()));
                }
            }
        }
        let mut entries: Vec<(usize, Vec<Value>, P)> = none
            .into_iter()
            .map(|(key, (first, acc))| (first, key, acc))
            .collect();
        entries.sort_by_key(|(first, _, _)| *first);
        entries
    });
    // Phase 3: merge partitions by first-seen row index — the serial
    // executor's group emission order.
    let mut entries: Vec<(usize, Vec<Value>, P)> = partials.into_iter().flatten().collect();
    entries.sort_by_key(|(first, _, _)| *first);
    let mut out = ProbRelation::new(keep.to_vec());
    out.rows = entries
        .into_iter()
        .map(|(_, key, acc)| (key, acc.complement()))
        .collect();
    out
}

/// Concatenate morsel outputs in morsel order.
fn stitch<T>(chunks: Vec<Vec<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Bucket row indices by hash partition; each bucket ascends, so workers
/// iterating a bucket visit rows in the serial pass's order.
fn partition_rows(hashes: &[u64], parts: usize) -> Vec<Vec<u32>> {
    let mut owners: Vec<Vec<u32>> = vec![Vec::new(); parts];
    for (i, &h) in hashes.iter().enumerate() {
        let i = u32::try_from(i).expect("partitioned input exceeds u32 rows");
        owners[h as usize % parts].push(i);
    }
    owners
}

/// FNV-1a-style hash of the key columns of a row. Only used to spread
/// groups over partitions; never reaches results.
fn hash_key(row: &[Value], idx: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &i in idx {
        h ^= row[i].0;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_plan;
    use crate::exec::execute;
    use cq::{parse_query, Vocabulary};
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    use pdb::RatProbs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Safe shapes from the serial executor's suite, plus negation.
    const QUERIES: &[&str] = &[
        "R(x)",
        "R(x), S(x,y)",
        "R(x), S(x,y), U(x,y,z)",
        "R(x), T(z,w)",
        "R(1), S(1,y)",
        "S(x,y), x < y",
        "S(x,x)",
        "R(x), S(x,y), U(x,y,z), V(x,w)",
        "R(x), not T(x)",
        "R(x), S(x,y), not U(x,y,z)",
    ];

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(0x9A9);
        for (i, text) in QUERIES.iter().enumerate() {
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).unwrap();
            let plan = build_plan(&q).unwrap();
            let opts = RandomDbOptions {
                domain: 3,
                tuples_per_relation: 12,
                prob_range: (0.1, 0.9),
            };
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let probs = db.prob_vector();
            let serial = execute(&db, &probs, &plan);
            for threads in [1, 2, 4, 8] {
                // grain 2: force many morsels even on the tiny test dbs.
                let pool = Pool::with_grain(threads, 2);
                let par = par_execute(&db, &probs, &plan, &pool);
                assert_eq!(
                    serial, par,
                    "query {i} ({text}) diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial_on_exact_rationals() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 8,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = RatProbs::from_db(&db);
        let serial = execute(&db, probs.as_slice(), &plan);
        let pool = Pool::with_grain(4, 2);
        let par = par_execute(&db, probs.as_slice(), &plan, &pool);
        assert_eq!(serial, par);
    }

    #[test]
    fn stats_report_the_fan_out() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let opts = RandomDbOptions {
            domain: 5,
            tuples_per_relation: 40,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let (p, stats) = par_query_probability(&db, &plan, ParOptions::with_grain(4, 4));
        let serial = crate::exec::query_probability(&db, &plan);
        assert_eq!(p, serial);
        assert_eq!(stats.threads(), 4);
        assert!(stats.total_morsels() > 0, "{stats:?}");
        assert!(stats.total_rows() > 0, "{stats:?}");
    }

    #[test]
    fn ranked_parallel_matches_serial() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "Director(d), Credit(d,m)").unwrap();
        let d = q.vars()[0];
        let plan = crate::build::build_ranked_plan(&q, &[d]).unwrap();
        let director = voc.find_relation("Director").unwrap();
        let credit = voc.find_relation("Credit").unwrap();
        let mut db = ProbDb::new(voc);
        for i in 0..20u64 {
            db.insert(director, vec![Value(i)], 0.02 + 0.04 * i as f64);
            db.insert(credit, vec![Value(i), Value(100 + i)], 0.9);
            db.insert(credit, vec![Value(i), Value(200 + i)], 0.4);
        }
        let probs = db.prob_vector();
        let serial = crate::exec::ranked_probabilities(&db, &probs, &plan, &[d]);
        for threads in [1, 2, 4] {
            let par = par_ranked_probabilities(
                &db,
                &probs,
                &plan,
                &[d],
                ParOptions::with_grain(threads, 2),
            );
            assert_eq!(serial, par, "{threads} threads");
        }
    }

    #[test]
    fn empty_database_scalar_is_zero() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let db = ProbDb::new(voc);
        let plan = build_plan(&q).unwrap();
        let (p, _) = par_query_probability(&db, &plan, ParOptions::new(4));
        assert_eq!(p, 0.0);
    }
}
