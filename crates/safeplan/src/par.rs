//! Morsel-driven parallel execution of safe plans.
//!
//! [`par_execute`] runs the same [`PlanNode`] language as [`crate::execute`]
//! on a scoped-thread worker [`Pool`] (see the `exec-parallel` crate), one
//! operator at a time, parallel *within* each operator — and on the same
//! **columnar flat-buffer kernels** as the serial executor:
//!
//! * **scans** and **complement scans** partition their input (pushed-down
//!   tuple ids, linearized bindings) into morsels pulled from a shared
//!   cursor; each morsel emits a columnar chunk of whole rows;
//! * **joins** hash the **smaller** input once (build-side selection —
//!   identical to the serial choice, a pure function of the row counts),
//!   then probe the larger side in parallel morsels. When the build side
//!   is the left input, probing yields `(left, right)` id pairs that a
//!   stable counting sort restores to the serial output order before a
//!   morsel-parallel emission pass materializes them;
//! * **independent projects** — the `1 − Π(1−p)` aggregation at the core of
//!   the extensional operators — hash-partition *groups* across workers
//!   (packed-key [`Grouper`](crate::relation) folds, no per-row keys) and
//!   merge the per-partition results by first-seen row index, so every
//!   group is folded by exactly one worker in row order.
//!
//! The invariant throughout (and the property the agreement tests pin
//! down): for any plan, database, and thread count, `par_execute` returns
//! **bit-for-bit** the relation the serial executor returns — same row
//! order, same `f64` values. Morsel outputs are stitched in morsel order
//! (the stride invariant makes that plain buffer concatenation), group
//! folds keep the serial multiplication order, and worker scheduling never
//! leaks into results. Parallelism changes wall time, not answers.

use crate::exec::{complement_rows, eval_pred, scan_rows, ComplementSpec, OpCounters, ScanSpec};
use crate::node::PlanNode;
use crate::relation::{
    choose_build_side, emit_pairs, filter_rows, group_fold_rows, hash_row_key, join_spec,
    pairs_by_left, probe_emit, probe_pairs, stitch_columnar, BuildSide, GroupFold, JoinIndex,
    ProbRelation,
};
use cq::{Pred, Value, Var};
use exec_parallel::{ExecStats, Pool, DEFAULT_GRAIN};
use lineage::ProbValue;
use pdb::ProbDb;
use std::time::Instant;

/// Tuning for one parallel execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParOptions {
    /// Worker threads (1 = inline serial dispatch, no spawning).
    pub threads: usize,
    /// Morsel size in rows; tests shrink it to force multi-morsel
    /// schedules on small inputs.
    pub grain: usize,
}

impl ParOptions {
    pub fn new(threads: usize) -> Self {
        ParOptions {
            threads,
            grain: DEFAULT_GRAIN,
        }
    }

    pub fn with_grain(threads: usize, grain: usize) -> Self {
        ParOptions { threads, grain }
    }

    /// The pool this configuration describes.
    pub fn pool(&self) -> Pool {
        Pool::with_grain(self.threads, self.grain)
    }
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions::new(1)
    }
}

/// Execute `plan` over `db` on `pool`, with tuple probabilities in
/// [`pdb::TupleId`] order. Returns exactly what [`crate::execute`] returns
/// — same rows, same order, same bits — for every thread count.
pub fn par_execute<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    pool: &Pool,
) -> ProbRelation<P> {
    par_execute_counted(db, probs, plan, pool, &mut OpCounters::default())
}

/// [`par_execute`] accumulating [`OpCounters`]. Counters are taken at
/// operator granularity on the coordinating thread, never inside morsels,
/// so they equal the serial execution's counters exactly.
pub fn par_execute_counted<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    pool: &Pool,
    counters: &mut OpCounters,
) -> ProbRelation<P> {
    assert_eq!(probs.len(), db.num_tuples(), "probability vector length");
    par_node(db, probs, plan, pool, counters)
}

fn par_node<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    pool: &Pool,
    counters: &mut OpCounters,
) -> ProbRelation<P> {
    match plan {
        PlanNode::Certain => ProbRelation::certain(),
        PlanNode::Never => ProbRelation::never(),
        PlanNode::Scan { atom } => {
            let _span = telemetry::span("scan");
            let t0 = Instant::now();
            let scan = ScanSpec::new(db, atom, counters);
            let chunks = pool.map_morsels(scan.ids.len(), |r| {
                scan_rows(db, probs, &scan.plan, &scan.ids[r])
            });
            let (data, out) = stitch_columnar(chunks);
            counters.times.scan_ns += t0.elapsed().as_nanos() as u64;
            ProbRelation::from_parts(scan.cols, data, out)
        }
        PlanNode::ComplementScan { atom } => {
            let _span = telemetry::span("complement-scan");
            let t0 = Instant::now();
            let spec = ComplementSpec::new(db, atom, counters);
            let chunks = pool.map_morsels(spec.total, |r| complement_rows(db, probs, &spec, r));
            let (data, out) = stitch_columnar(chunks);
            counters.times.complement_ns += t0.elapsed().as_nanos() as u64;
            ProbRelation::from_parts(spec.cols.clone(), data, out)
        }
        PlanNode::Select { pred, input } => {
            let rel = par_node(db, probs, input, pool, counters);
            let _span = telemetry::span("select");
            let t0 = Instant::now();
            let out = par_select(&rel, pred, pool);
            counters.times.select_ns += t0.elapsed().as_nanos() as u64;
            out
        }
        PlanNode::IndependentJoin { inputs } => {
            let mut acc = ProbRelation::certain();
            for i in inputs {
                let right = par_node(db, probs, i, pool, counters);
                let _span = telemetry::span("join");
                let t0 = Instant::now();
                acc = par_join(&acc, &right, pool, counters);
                counters.times.join_ns += t0.elapsed().as_nanos() as u64;
            }
            acc
        }
        PlanNode::IndependentProject { keep, input } => {
            let rel = par_node(db, probs, input, pool, counters);
            let _span = telemetry::span("project");
            let t0 = Instant::now();
            let out = par_project(&rel, keep, pool);
            counters.groups += out.len() as u64;
            counters.times.project_ns += t0.elapsed().as_nanos() as u64;
            out
        }
    }
}

/// `p(q)` of a Boolean plan in `f64` arithmetic, executed in parallel;
/// also reports how the work spread over the workers.
pub fn par_query_probability(db: &ProbDb, plan: &PlanNode, opts: ParOptions) -> (f64, ExecStats) {
    let pool = opts.pool();
    let p = par_execute(db, &db.prob_vector(), plan, &pool).scalar();
    (p, pool.stats())
}

/// [`par_query_probability`] with operator counters alongside the
/// per-thread timing counters.
pub fn par_query_probability_counted(
    db: &ProbDb,
    plan: &PlanNode,
    opts: ParOptions,
    counters: &mut OpCounters,
) -> (f64, ExecStats) {
    let pool = opts.pool();
    let p = par_execute_counted(db, &db.prob_vector(), plan, &pool, counters).scalar();
    (p, pool.stats())
}

/// Parallel counterpart of [`crate::ranked_probabilities`]: execute a
/// ranked plan with the answer set partitioned across workers and return
/// one `(head binding, marginal probability)` pair per candidate, in the
/// serial path's exact order. Callers wanting per-thread counters can run
/// [`par_execute`] on their own [`Pool`] and read its stats.
///
/// # Panics
/// If `plan` does not carry every variable of `head` as an output column.
pub fn par_ranked_probabilities<P: ProbValue + Send + Sync>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    head: &[Var],
    opts: ParOptions,
) -> Vec<(Vec<Value>, P)> {
    let pool = opts.pool();
    let rel = par_execute(db, probs, plan, &pool);
    crate::exec::project_head(&rel, head)
}

/// Partitioned filter: morsels over the input rows, each emitting a
/// columnar chunk of whole rows.
pub(crate) fn par_select<P: ProbValue + Send + Sync>(
    rel: &ProbRelation<P>,
    pred: &Pred,
    pool: &Pool,
) -> ProbRelation<P> {
    let cols = rel.cols().to_vec();
    let chunks = pool.map_morsels(rel.len(), |rows| {
        filter_rows(rel, rows, |row| eval_pred(pred, &cols, row))
    });
    let (data, probs) = stitch_columnar(chunks);
    ProbRelation::from_parts(cols, data, probs)
}

/// Parallel independent join with build-side selection. The build side —
/// the smaller input, same deterministic choice as the serial join — is
/// indexed once on the coordinating thread; the probe side streams through
/// in morsels. A left-side build probes into id pairs, counting-sorts them
/// back to the serial output order, and materializes in parallel over
/// stride-aligned pair ranges.
fn par_join<P: ProbValue + Send + Sync>(
    left: &ProbRelation<P>,
    right: &ProbRelation<P>,
    pool: &Pool,
    counters: &mut OpCounters,
) -> ProbRelation<P> {
    par_join_sided(
        left,
        right,
        choose_build_side(left.len(), right.len()),
        pool,
        counters,
    )
}

/// [`par_join`] with the build side supplied by the caller. The output is
/// bit-identical regardless of `side` — a right build emits probe-major
/// directly; a left build counting-sorts the probe pairs back into the
/// same left-major order — so callers (the DAG executor's cost model) may
/// pick the side from *estimates* without risking the agreement invariant.
pub(crate) fn par_join_sided<P: ProbValue + Send + Sync>(
    left: &ProbRelation<P>,
    right: &ProbRelation<P>,
    side: BuildSide,
    pool: &Pool,
    counters: &mut OpCounters,
) -> ProbRelation<P> {
    counters.joins += 1;
    let spec = join_spec(left.cols(), right.cols());
    let (data, probs) = match side {
        BuildSide::Right => {
            let index = JoinIndex::build(right, &spec.other_key);
            let chunks =
                pool.map_morsels(left.len(), |r| probe_emit(&spec, left, right, &index, r));
            stitch_columnar(chunks)
        }
        BuildSide::Left => {
            counters.joins_build_left += 1;
            let index = JoinIndex::build(left, &spec.left_key);
            let pair_chunks = pool.map_morsels(right.len(), |r| {
                probe_pairs(&index, right, &spec.other_key, r)
            });
            // Chunks concatenate right-ascending (morsel order), exactly
            // the serial probe sequence; the counting sort then restores
            // left-major output order.
            let mut pairs = Vec::with_capacity(pair_chunks.iter().map(Vec::len).sum());
            for c in pair_chunks {
                pairs.extend(c);
            }
            let pairs = pairs_by_left(&pairs, left.len());
            let chunks =
                pool.map_morsels(pairs.len(), |r| emit_pairs(&spec, left, right, &pairs[r]));
            stitch_columnar(chunks)
        }
    };
    counters.join_rows += probs.len() as u64;
    ProbRelation::from_parts(spec.out_cols, data, probs)
}

/// Parallel independent project: groups are hash-partitioned across
/// workers; each worker folds its groups' rows **in row order** (the
/// serial multiplication order) through the packed-key grouper, and the
/// per-partition results merge by first-seen row index — disjoint groups,
/// so merging is concatenation, not re-multiplication, and `f64` bits are
/// preserved.
fn par_project<P: ProbValue + Send + Sync>(
    rel: &ProbRelation<P>,
    keep: &[Var],
    pool: &Pool,
) -> ProbRelation<P> {
    par_project_parts(rel, keep, pool, pool.threads())
}

/// [`par_project`] with an explicit partition count. The first-seen-row
/// merge makes the output a pure function of the input — identical for
/// **any** `parts` — so the sharded executor can fan groups out over
/// `shards × threads` partitions without perturbing a single bit.
pub(crate) fn par_project_parts<P: ProbValue + Send + Sync>(
    rel: &ProbRelation<P>,
    keep: &[Var],
    pool: &Pool,
    parts: usize,
) -> ProbRelation<P> {
    // Sub-morsel inputs are not worth a fan-out; the serial fold is the
    // same computation (bit for bit), minus the partition scaffolding.
    if (pool.threads() == 1 && parts <= 1) || rel.len() <= pool.grain() {
        return rel.independent_project(keep);
    }
    let parts = parts.max(1);
    let key_idx: Vec<usize> = keep
        .iter()
        .map(|&v| rel.col_index(v).expect("projection column missing"))
        .collect();
    // Phase 1: group hashes, one pass in parallel stride-aligned morsels
    // (order-stable). Each morsel walks its slice of the flat value buffer
    // directly — the element range is row-aligned by construction.
    let arity = rel.arity();
    let hash_chunks = pool.map_morsels_strided(rel.len(), arity, |rows, elems| {
        if arity == 0 {
            // Zero-column relation: every row has the empty key.
            vec![hash_row_key(&[], &key_idx); rows.len()]
        } else {
            rel.values()[elems]
                .chunks_exact(arity)
                .map(|row| hash_row_key(row, &key_idx))
                .collect::<Vec<u64>>()
        }
    });
    let owners = partition_rows(&stitch(hash_chunks), parts);
    // Phase 2: each worker owns the groups hashing to its partitions and
    // folds `Π(1−p)` over their rows in row order, touching only its own
    // rows (`owners[part]` ascends, preserving the serial fold order).
    let partials: Vec<GroupFold<P>> = pool.map_partitions(parts, |part| {
        group_fold_rows(rel, &key_idx, owners[part].iter().copied())
    });
    // Phase 3: merge partitions by first-seen row index — the serial
    // executor's group emission order.
    let mut entries: Vec<(u32, usize, usize)> = Vec::new();
    for (pi, fold) in partials.iter().enumerate() {
        for s in 0..fold.grouper.len() {
            entries.push((fold.first_row[s], pi, s));
        }
    }
    entries.sort_unstable_by_key(|&(first, _, _)| first);
    let mut out = ProbRelation::with_capacity(keep.to_vec(), entries.len());
    for (_, pi, s) in entries {
        out.push(
            partials[pi].grouper.key(s),
            partials[pi].none[s].complement(),
        );
    }
    out
}

/// Concatenate morsel outputs in morsel order.
fn stitch<T>(chunks: Vec<Vec<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Bucket row indices by hash partition; each bucket ascends, so workers
/// iterating a bucket visit rows in the serial pass's order.
fn partition_rows(hashes: &[u64], parts: usize) -> Vec<Vec<u32>> {
    let mut owners: Vec<Vec<u32>> = vec![Vec::new(); parts];
    for (i, &h) in hashes.iter().enumerate() {
        let i = u32::try_from(i).expect("partitioned input exceeds u32 rows");
        owners[h as usize % parts].push(i);
    }
    owners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_plan;
    use crate::exec::execute;
    use cq::{parse_query, Vocabulary};
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    use pdb::RatProbs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Safe shapes from the serial executor's suite, plus negation and
    /// constants (pushdown scans must partition identically).
    const QUERIES: &[&str] = &[
        "R(x)",
        "R(x), S(x,y)",
        "R(x), S(x,y), U(x,y,z)",
        "R(x), T(z,w)",
        "R(1), S(1,y)",
        "S(x,y), x < y",
        "S(x,x)",
        "R(x), S(x,y), U(x,y,z), V(x,w)",
        "R(x), not T(x)",
        "R(x), S(x,y), not U(x,y,z)",
    ];

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(0x9A9);
        for (i, text) in QUERIES.iter().enumerate() {
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).unwrap();
            let plan = build_plan(&q).unwrap();
            let opts = RandomDbOptions {
                domain: 3,
                tuples_per_relation: 12,
                prob_range: (0.1, 0.9),
            };
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let probs = db.prob_vector();
            let serial = execute(&db, &probs, &plan);
            for threads in [1, 2, 4, 8] {
                // grain 2: force many morsels even on the tiny test dbs.
                let pool = Pool::with_grain(threads, 2);
                let par = par_execute(&db, &probs, &plan, &pool);
                assert_eq!(
                    serial, par,
                    "query {i} ({text}) diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_counters_equal_serial_counters() {
        let mut rng = StdRng::seed_from_u64(0xC0C0);
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(1), S(1,y)").unwrap();
        let plan = build_plan(&q).unwrap();
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 12,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = db.prob_vector();
        let mut serial = OpCounters::default();
        let _ = crate::exec::execute_counted(&db, &probs, &plan, &mut serial);
        for threads in [1, 2, 4] {
            let pool = Pool::with_grain(threads, 2);
            let mut par = OpCounters::default();
            let _ = par_execute_counted(&db, &probs, &plan, &pool, &mut par);
            assert_eq!(serial, par, "{threads} threads");
        }
        assert!(serial.index_scans > 0, "{serial:?}");
    }

    #[test]
    fn parallel_matches_serial_on_exact_rationals() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 8,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = RatProbs::from_db(&db);
        let serial = execute(&db, probs.as_slice(), &plan);
        let pool = Pool::with_grain(4, 2);
        let par = par_execute(&db, probs.as_slice(), &plan, &pool);
        assert_eq!(serial, par);
    }

    #[test]
    fn stats_report_the_fan_out() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let opts = RandomDbOptions {
            domain: 5,
            tuples_per_relation: 40,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let (p, stats) = par_query_probability(&db, &plan, ParOptions::with_grain(4, 4));
        let serial = crate::exec::query_probability(&db, &plan);
        assert_eq!(p, serial);
        assert_eq!(stats.threads(), 4);
        assert!(stats.total_morsels() > 0, "{stats:?}");
        assert!(stats.total_rows() > 0, "{stats:?}");
    }

    #[test]
    fn ranked_parallel_matches_serial() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "Director(d), Credit(d,m)").unwrap();
        let d = q.vars()[0];
        let plan = crate::build::build_ranked_plan(&q, &[d]).unwrap();
        let director = voc.find_relation("Director").unwrap();
        let credit = voc.find_relation("Credit").unwrap();
        let mut db = ProbDb::new(voc);
        for i in 0..20u64 {
            db.insert(director, vec![Value(i)], 0.02 + 0.04 * i as f64);
            db.insert(credit, vec![Value(i), Value(100 + i)], 0.9);
            db.insert(credit, vec![Value(i), Value(200 + i)], 0.4);
        }
        let probs = db.prob_vector();
        let serial = crate::exec::ranked_probabilities(&db, &probs, &plan, &[d]);
        for threads in [1, 2, 4] {
            let par = par_ranked_probabilities(
                &db,
                &probs,
                &plan,
                &[d],
                ParOptions::with_grain(threads, 2),
            );
            assert_eq!(serial, par, "{threads} threads");
        }
    }

    #[test]
    fn empty_database_scalar_is_zero() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let db = ProbDb::new(voc);
        let plan = build_plan(&q).unwrap();
        let (p, _) = par_query_probability(&db, &plan, ParOptions::new(4));
        assert_eq!(p, 0.0);
    }
}
