//! # safeplan — extensional safe plans for hierarchical queries
//!
//! The paper's introduction describes how MystiQ evaluates self-join-free
//! queries: "we test if they have a PTIME plan using the techniques in [9]"
//! — an *extensional* relational-algebra plan whose operators manipulate
//! probabilities directly inside the database engine. This crate builds that
//! subsystem: a plan language with *independent join* and *independent
//! project* operators, a compiler from hierarchical self-join-free
//! conjunctive queries (the Theorem 1.3 tractable fragment) to plans, and a
//! set-at-a-time executor generic over the probability number type (fast
//! `f64` or exact rationals).
//!
//! The plan computes exactly the Eq. 3 recurrence, but *set-at-a-time*
//! (one pass per operator over sorted/hashed relations) rather than
//! tuple-at-a-time (one recursive call per domain value), which is how a
//! real engine would run it — and measurably faster at scale; the
//! `plan_vs_recurrence` bench quantifies the gap.
//!
//! The data plane is **columnar**: relations are flat buffers (one
//! contiguous value vector with arity stride plus a probability column —
//! see [`relation`] for the invariants), operator kernels touch no per-row
//! heap allocations, grouping runs on packed `u64`/`u128` keys, joins hash
//! the smaller input, and scans push constants down to per-relation
//! `(column, value)` posting lists in [`pdb::ProbDb`]. The [`par`] module
//! executes the same plans on a morsel-driven scoped-thread worker pool
//! ([`par_execute`]), bit-for-bit identical to the serial executor at
//! every thread count. The [`dag`] module goes one level up: plans
//! decompose into an operator-task DAG whose independent subtrees overlap
//! on the same pool, over a hash-**sharded** data plane
//! ([`dag_execute`]) — still bit-for-bit identical for every thread
//! count, shard count, and schedule. When the database carries a matching
//! **shard-resident layout** ([`pdb::ProbDb::set_shard_layout`]),
//! sharded scans read per-shard columnar buffers and posting lists and
//! resolve with zero global-index probes (counter-verified via
//! [`OpCounters`]). The pre-columnar row executor survives in [`rowref`]
//! as the correctness oracle and bench baseline.
//!
//! ```
//! use cq::{parse_query, Vocabulary, Value};
//! use pdb::ProbDb;
//! use safeplan::{build_plan, query_probability};
//!
//! let mut voc = Vocabulary::new();
//! let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
//! let r = voc.find_relation("R").unwrap();
//! let s = voc.find_relation("S").unwrap();
//! let mut db = ProbDb::new(voc);
//! db.insert(r, vec![Value(1)], 0.5);
//! db.insert(s, vec![Value(1), Value(2)], 0.4);
//! let plan = build_plan(&q).unwrap();
//! assert!((query_probability(&db, &plan) - 0.2).abs() < 1e-12);
//! ```

pub mod build;
pub mod dag;
pub mod exec;
pub mod node;
pub mod optimize;
pub mod par;
pub mod relation;
pub mod rowref;

pub use build::{build_plan, build_ranked_plan, PlanError};
pub use dag::{
    dag_execute, dag_execute_counted, dag_execute_counted_with_picker, dag_query_probability,
    dag_query_probability_counted, dag_ranked_probabilities, dag_ranked_probabilities_counted,
    DagOptions, DagRun, ShardStats,
};
pub use exec::{
    execute, execute_counted, query_probability, query_probability_counted,
    query_probability_exact, ranked_probabilities, ranked_probabilities_counted, OpCounters,
    OpTimes,
};
pub use node::PlanNode;
pub use optimize::{
    columns, estimate_rows, optimize, optimize_with_stats, plan_shard_fanout, scan_estimate,
    SHARD_MIN_ROWS,
};
pub use par::{
    par_execute, par_execute_counted, par_query_probability, par_query_probability_counted,
    par_ranked_probabilities, ParOptions,
};
// Re-exported so downstream crates and tests can drive the parallel and
// DAG executors without a direct `exec-parallel` dependency.
pub use exec_parallel::{DagStats, ExecStats, Pool, ThreadStats};
pub use relation::{FnvHasher, ProbRelation};
