//! Probabilistic relations: the values flowing between plan operators.
//!
//! # Columnar flat-buffer layout
//!
//! A [`ProbRelation`] stores its rows in **one contiguous buffer** with a
//! fixed stride, plus a parallel probability column:
//!
//! ```text
//! cols : [x, y]                      arity (stride) = 2
//! data : [x0 y0 | x1 y1 | x2 y2]     len = rows · arity
//! probs: [p0,     p1,     p2    ]    len = rows
//! ```
//!
//! Invariants every operator kernel relies on (and must preserve):
//!
//! * **Stride** — `data.len() == probs.len() * arity` with
//!   `arity == cols.len()`; row `i` occupies
//!   `data[i*arity .. (i+1)*arity]` and never straddles that boundary.
//!   A Boolean relation has `arity == 0`, an empty `data`, and 0 or 1
//!   entries in `probs`.
//! * **Alignment** — operators append *whole rows* (`push` /
//!   `extend_from_slice` of `arity` values plus one probability); a
//!   half-written row is never observable. Morsel-parallel kernels
//!   partition the **row index space**; the element range of a morsel is
//!   `rows.start*arity .. rows.end*arity`, so chunk concatenation in
//!   morsel order reproduces a serial left-to-right pass bit for bit.
//! * **Order is meaning** — row order is the serial executor's output
//!   order. Joins emit probe-major/build-insertion-order rows *regardless
//!   of which side was hashed* (see [`choose_build_side`]), and grouping
//!   emits groups in first-seen row order folding each group's rows in row
//!   order, so `f64` results are bit-identical across executors and thread
//!   counts.
//!
//! Scans, joins, projections, and filters touch **no per-row heap
//! allocations**: values are copied slice-to-slice into the flat buffer,
//! and grouping keys are packed into `u64`/`u128` machine words for arity
//! ≤ 2 ([`Grouper`]) with a hashed fallback (with explicit collision
//! chains) above that. The pre-columnar row executor is preserved in
//! [`crate::rowref`] as the correctness oracle and bench baseline.

use cq::{Value, Var};
use lineage::ProbValue;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Range;

/// A relation whose rows carry marginal probabilities of *mutually
/// independent* events. Operator correctness (product for joins,
/// `1 − Π(1−p)` for projections) relies on the independence discipline the
/// plan compiler enforces: rows of one relation pin disjoint tuple sets, and
/// joined relations touch disjoint relation symbols.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbRelation<P> {
    /// Column schema: the query variables each position binds.
    cols: Vec<Var>,
    /// Row stride: `cols.len()`, cached.
    arity: usize,
    /// The flat value buffer: `rows · arity` values, row-major.
    data: Vec<Value>,
    /// The probability column: one entry per row.
    probs: Vec<P>,
}

impl<P: ProbValue> ProbRelation<P> {
    pub fn new(cols: Vec<Var>) -> Self {
        let arity = cols.len();
        ProbRelation {
            cols,
            arity,
            data: Vec::new(),
            probs: Vec::new(),
        }
    }

    /// An empty relation with buffer space for `rows` rows.
    pub fn with_capacity(cols: Vec<Var>, rows: usize) -> Self {
        let arity = cols.len();
        ProbRelation {
            cols,
            arity,
            data: Vec::with_capacity(rows * arity),
            probs: Vec::with_capacity(rows),
        }
    }

    /// Assemble a relation from already-built columnar buffers.
    ///
    /// # Panics
    /// If the stride invariant `data.len() == probs.len() * cols.len()`
    /// does not hold.
    pub fn from_parts(cols: Vec<Var>, data: Vec<Value>, probs: Vec<P>) -> Self {
        let arity = cols.len();
        assert_eq!(data.len(), probs.len() * arity, "stride invariant");
        ProbRelation {
            cols,
            arity,
            data,
            probs,
        }
    }

    /// The zero-column, one-row relation of probability 1 — the unit of
    /// independent join; a Boolean "true" scalar.
    pub fn certain() -> Self {
        ProbRelation {
            cols: Vec::new(),
            arity: 0,
            data: Vec::new(),
            probs: vec![P::one()],
        }
    }

    /// The zero-column, zero-row relation — a Boolean "false" scalar.
    pub fn never() -> Self {
        ProbRelation {
            cols: Vec::new(),
            arity: 0,
            data: Vec::new(),
            probs: Vec::new(),
        }
    }

    pub fn cols(&self) -> &[Var] {
        &self.cols
    }

    /// Row stride (number of columns).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The values of row `i` (an `arity`-long slice of the flat buffer).
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// The probability of row `i`.
    #[inline]
    pub fn prob(&self, i: usize) -> &P {
        &self.probs[i]
    }

    /// The whole flat value buffer (row-major, stride [`Self::arity`]).
    pub fn values(&self) -> &[Value] {
        &self.data
    }

    /// The whole probability column.
    pub fn probs(&self) -> &[P] {
        &self.probs
    }

    /// Append one row (copies `row` into the flat buffer — no per-row
    /// allocation).
    ///
    /// # Panics
    /// If `row.len() != self.arity()`.
    #[inline]
    pub fn push(&mut self, row: &[Value], p: P) {
        debug_assert_eq!(row.len(), self.arity, "row stride");
        self.data.extend_from_slice(row);
        self.probs.push(p);
    }

    /// Iterate `(row values, probability)` pairs in row order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], &P)> {
        (0..self.len()).map(|i| (self.row(i), self.prob(i)))
    }

    /// Position of variable `v` in the schema.
    pub fn col_index(&self, v: Var) -> Option<usize> {
        self.cols.iter().position(|&c| c == v)
    }

    /// For a Boolean (zero-column) relation: the scalar probability.
    ///
    /// # Panics
    /// If the relation has columns or more than one row.
    pub fn scalar(&self) -> P {
        assert!(self.cols.is_empty(), "scalar() on non-Boolean relation");
        match self.probs.len() {
            0 => P::zero(),
            1 => self.probs[0].clone(),
            n => panic!("Boolean relation with {n} rows"),
        }
    }

    /// Natural join, multiplying probabilities. Correct when the two
    /// relations' row events are independent (disjoint relation symbols —
    /// guaranteed for self-join-free plans). Hashes the **smaller** input
    /// (build-side selection); the output is identical either way: rows in
    /// probe-major order over `self`, per key in `other`'s insertion order.
    pub fn independent_join(&self, other: &ProbRelation<P>) -> ProbRelation<P> {
        let spec = join_spec(&self.cols, &other.cols);
        let (data, probs) = match choose_build_side(self.len(), other.len()) {
            BuildSide::Right => {
                let index = JoinIndex::build(other, &spec.other_key);
                probe_emit(&spec, self, other, &index, 0..self.len())
            }
            BuildSide::Left => {
                let index = JoinIndex::build(self, &spec.left_key);
                let pairs = probe_pairs(&index, other, &spec.other_key, 0..other.len());
                let pairs = pairs_by_left(&pairs, self.len());
                emit_pairs(&spec, self, other, &pairs)
            }
        };
        ProbRelation::from_parts(spec.out_cols, data, probs)
    }

    /// Independent project: keep columns `keep`, combining collapsing rows
    /// with `1 − Π (1 − p)`. Correct when rows mapping to the same group are
    /// independent events (distinct values of the projected-away root
    /// variable pin disjoint tuples). Groups are interned through the
    /// packed-key [`Grouper`]; emission order is first-seen row order and
    /// each group folds its rows in row order (the serial multiplication
    /// order).
    ///
    /// # Panics
    /// If some column in `keep` is not in the schema.
    pub fn independent_project(&self, keep: &[Var]) -> ProbRelation<P> {
        let key_idx: Vec<usize> = keep
            .iter()
            .map(|&v| self.col_index(v).expect("projection column missing"))
            .collect();
        let fold = group_fold(self, &key_idx, 0..self.len());
        let mut out = ProbRelation::with_capacity(keep.to_vec(), fold.grouper.len());
        for s in 0..fold.grouper.len() {
            out.push(fold.grouper.key(s), fold.none[s].complement());
        }
        out
    }

    /// Filter rows by a predicate over the bound values.
    pub fn select(&self, pred: impl Fn(&[Value]) -> bool) -> ProbRelation<P> {
        let (data, probs) = filter_rows(self, 0..self.len(), |row| pred(row));
        ProbRelation::from_parts(self.cols.clone(), data, probs)
    }
}

/// The filter kernel over a row range: copies matching rows slice-to-slice
/// into fresh columnar buffers. Shared by the serial `select` and the
/// morsel-parallel filter.
pub(crate) fn filter_rows<P: ProbValue>(
    rel: &ProbRelation<P>,
    rows: Range<usize>,
    pred: impl Fn(&[Value]) -> bool,
) -> (Vec<Value>, Vec<P>) {
    let mut data = Vec::new();
    let mut probs = Vec::new();
    for i in rows {
        let row = rel.row(i);
        if pred(row) {
            data.extend_from_slice(row);
            probs.push(rel.prob(i).clone());
        }
    }
    (data, probs)
}

/// Concatenate columnar morsel outputs in morsel order. Because every chunk
/// holds whole rows (the alignment invariant), plain concatenation of the
/// value buffers and probability columns reproduces the serial output.
pub(crate) fn stitch_columnar<P>(chunks: Vec<(Vec<Value>, Vec<P>)>) -> (Vec<Value>, Vec<P>) {
    let mut data = Vec::with_capacity(chunks.iter().map(|(d, _)| d.len()).sum());
    let mut probs = Vec::with_capacity(chunks.iter().map(|(_, p)| p.len()).sum());
    for (d, p) in chunks {
        data.extend(d);
        probs.extend(p);
    }
    (data, probs)
}

// ---------------------------------------------------------------------------
// Packed-key grouping
// ---------------------------------------------------------------------------

/// FNV-1a over raw bytes — the workspace builds offline, so the `HashMap`s
/// below swap SipHash for this cheap deterministic hasher (keys are
/// machine-word packs of trusted in-process values, not attacker input).
/// Public: the incremental view-maintenance crate keys its join-value
/// indexes and group maps with the same hasher.
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        // Final avalanche: FNV distributes low bits poorly for small
        // integer keys; xor-fold the high bits down.
        let h = self.0;
        h ^ (h >> 32)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Pack an arity-≤2 key into one machine word ([`Value`] is a `u64`
/// newtype, so the packing is **exact** — distinct keys map to distinct
/// words, no collision handling needed).
#[inline]
fn pack1(key: &[Value]) -> u64 {
    key[0].0
}

#[inline]
fn pack2(key: &[Value]) -> u128 {
    (u128::from(key[0].0) << 64) | u128::from(key[1].0)
}

/// Row-key hash for the arity ≥ 3 fallback and for hash-partitioning rows
/// across workers (FNV-1a over the key values plus a mixing shift). Only
/// ever used to spread keys over buckets/partitions; never reaches results.
#[inline]
pub(crate) fn hash_row_key(row: &[Value], idx: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &i in idx {
        h ^= row[i].0;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

/// [`hash_row_key`] over a contiguous key slice (all positions).
#[inline]
pub(crate) fn hash_values(vals: &[Value]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in vals {
        h ^= v.0;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

/// Interns group keys to dense slot ids in first-seen order, with the key
/// representation picked by arity:
///
/// * arity 0 — the single unit key, slot 0;
/// * arity 1 — the value itself as a `u64` map key (exact);
/// * arity 2 — both values packed into a `u128` map key (exact);
/// * arity ≥ 3 — a 64-bit key hash with **explicit collision chains**:
///   each hash bucket holds the slots of every distinct key that hashed to
///   it, and a probe compares the candidate's stored key values before
///   trusting the match.
///
/// Slot ids are assigned 0, 1, 2, … in first-seen order, so iterating
/// slots reproduces the first-seen group order the serial executor emits.
pub(crate) struct Grouper {
    arity: usize,
    /// Flat interned keys, stride `arity`: slot `s` owns
    /// `keys[s*arity .. (s+1)*arity]`.
    keys: Vec<Value>,
    slots: usize,
    map1: FnvMap<u64, u32>,
    map2: FnvMap<u128, u32>,
    /// arity ≥ 3: key hash → slots of the distinct keys behind that hash.
    maph: FnvMap<u64, Vec<u32>>,
    /// Mask applied to fallback hashes. `!0` in production; tests set `0`
    /// to funnel every key into one bucket and exercise the chains.
    hash_mask: u64,
}

impl Grouper {
    pub fn new(arity: usize) -> Self {
        Grouper {
            arity,
            keys: Vec::new(),
            slots: 0,
            map1: FnvMap::default(),
            map2: FnvMap::default(),
            maph: FnvMap::default(),
            hash_mask: !0,
        }
    }

    /// A grouper whose fallback hash is constant — every arity ≥ 3 key
    /// collides, forcing every probe through the collision chains.
    #[cfg(test)]
    pub fn with_constant_hash(arity: usize) -> Self {
        let mut g = Grouper::new(arity);
        g.hash_mask = 0;
        g
    }

    /// Number of distinct keys interned so far.
    pub fn len(&self) -> usize {
        self.slots
    }

    /// The interned key of `slot`.
    pub fn key(&self, slot: usize) -> &[Value] {
        &self.keys[slot * self.arity..(slot + 1) * self.arity]
    }

    #[inline]
    fn key_eq(&self, slot: u32, key: &[Value]) -> bool {
        self.key(slot as usize) == key
    }

    /// Slot of `key`, interning it if unseen; the flag is `true` for a
    /// fresh slot.
    pub fn intern(&mut self, key: &[Value]) -> (usize, bool) {
        debug_assert_eq!(key.len(), self.arity);
        let next = self.slots as u32;
        let slot = match self.arity {
            0 => {
                if self.slots == 0 {
                    self.slots = 1;
                    return (0, true);
                }
                return (0, false);
            }
            1 => *self.map1.entry(pack1(key)).or_insert(next),
            2 => *self.map2.entry(pack2(key)).or_insert(next),
            _ => {
                let h = self.hashed(key);
                let chain = self.maph.entry(h).or_default();
                match chain.iter().find(|&&s| {
                    // Inlined key_eq: `chain` borrows self.maph mutably.
                    &self.keys[s as usize * key.len()..(s as usize + 1) * key.len()] == key
                }) {
                    Some(&s) => s,
                    None => {
                        chain.push(next);
                        next
                    }
                }
            }
        };
        if slot == next {
            self.keys.extend_from_slice(key);
            self.slots += 1;
            (slot as usize, true)
        } else {
            (slot as usize, false)
        }
    }

    /// Slot of `key` without interning.
    pub fn get(&self, key: &[Value]) -> Option<usize> {
        debug_assert_eq!(key.len(), self.arity);
        let slot = match self.arity {
            0 => {
                return if self.slots == 1 { Some(0) } else { None };
            }
            1 => self.map1.get(&pack1(key)).copied(),
            2 => self.map2.get(&pack2(key)).copied(),
            _ => {
                let h = self.hashed(key);
                self.maph
                    .get(&h)
                    .and_then(|chain| chain.iter().find(|&&s| self.key_eq(s, key)))
                    .copied()
            }
        };
        slot.map(|s| s as usize)
    }

    #[inline]
    fn hashed(&self, key: &[Value]) -> u64 {
        hash_values(key) & self.hash_mask
    }
}

/// One group-by pass over a set of rows: the interned groups, the running
/// `Π(1−p)` per group (folded in visit order), and the first row index
/// that opened each group (the partition-merge sort key of the parallel
/// aggregation).
pub(crate) struct GroupFold<P> {
    pub grouper: Grouper,
    pub none: Vec<P>,
    pub first_row: Vec<u32>,
}

/// Fold `Π(1−p)` per group over a contiguous row range (visit order = row
/// order — the serial multiplication order).
pub(crate) fn group_fold<P: ProbValue>(
    rel: &ProbRelation<P>,
    key_idx: &[usize],
    rows: Range<usize>,
) -> GroupFold<P> {
    group_fold_rows(rel, key_idx, rows.map(|i| i as u32))
}

/// Fold `Π(1−p)` per group over an explicit ascending row-id sequence —
/// the per-partition kernel of the parallel aggregation (each partition
/// owns whole groups, visiting its rows in ascending order preserves the
/// serial fold order within every group).
pub(crate) fn group_fold_rows<P: ProbValue>(
    rel: &ProbRelation<P>,
    key_idx: &[usize],
    rows: impl Iterator<Item = u32>,
) -> GroupFold<P> {
    let mut grouper = Grouper::new(key_idx.len());
    let mut none: Vec<P> = Vec::new();
    let mut first_row: Vec<u32> = Vec::new();
    let mut keybuf = vec![Value(0); key_idx.len()];
    for i in rows {
        let row = rel.row(i as usize);
        for (slot, &k) in keybuf.iter_mut().zip(key_idx) {
            *slot = row[k];
        }
        let (s, new) = grouper.intern(&keybuf);
        let c = rel.prob(i as usize).complement();
        if new {
            none.push(c);
            first_row.push(i);
        } else if !none[s].is_zero() {
            // Zero short-circuit: once the running product is exactly
            // zero it stays zero under every further complement multiply
            // (complements are non-negative), so skipping changes no bits
            // — and avoids the subnormal-arithmetic tail on long folds.
            none[s] = none[s].mul(&c);
        }
    }
    GroupFold {
        grouper,
        none,
        first_row,
    }
}

// ---------------------------------------------------------------------------
// Join machinery
// ---------------------------------------------------------------------------

/// Column bookkeeping of a natural join, shared between the serial
/// [`ProbRelation::independent_join`] and the parallel probe so both
/// produce identical schemas and row layouts.
pub(crate) struct JoinSpec {
    /// Key positions of the join columns in the left side.
    pub left_key: Vec<usize>,
    /// Key positions of the join columns in the right side.
    pub other_key: Vec<usize>,
    /// Right-side columns that are not join columns, in schema order.
    pub other_extra: Vec<usize>,
    /// Output schema: left columns, then the right extras.
    pub out_cols: Vec<Var>,
}

pub(crate) fn join_spec(left: &[Var], right: &[Var]) -> JoinSpec {
    let common: Vec<Var> = left.iter().copied().filter(|c| right.contains(c)).collect();
    let left_key: Vec<usize> = common
        .iter()
        .map(|c| left.iter().position(|l| l == c).unwrap())
        .collect();
    let other_key: Vec<usize> = common
        .iter()
        .map(|c| right.iter().position(|r| r == c).unwrap())
        .collect();
    let other_extra: Vec<usize> = (0..right.len())
        .filter(|&i| !common.contains(&right[i]))
        .collect();
    let mut out_cols = left.to_vec();
    out_cols.extend(other_extra.iter().map(|&i| right[i]));
    JoinSpec {
        left_key,
        other_key,
        other_extra,
        out_cols,
    }
}

/// Which input a join hashes. The **smaller** side becomes the build side;
/// ties keep the right (the legacy choice). The decision is a pure function
/// of the two row counts, so the serial and parallel executors always pick
/// the same side — and the emitted rows are identical either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BuildSide {
    Left,
    Right,
}

pub(crate) fn choose_build_side(left_len: usize, right_len: usize) -> BuildSide {
    if left_len < right_len {
        BuildSide::Left
    } else {
        BuildSide::Right
    }
}

/// Build-side hash index: packed-key [`Grouper`] plus, per key slot, the
/// build rows holding that key in insertion (ascending row) order.
pub(crate) struct JoinIndex {
    grouper: Grouper,
    postings: Vec<Vec<u32>>,
}

impl JoinIndex {
    pub fn build<P: ProbValue>(rel: &ProbRelation<P>, key_idx: &[usize]) -> Self {
        let mut grouper = Grouper::new(key_idx.len());
        let mut postings: Vec<Vec<u32>> = Vec::new();
        let mut keybuf = vec![Value(0); key_idx.len()];
        for i in 0..rel.len() {
            let row = rel.row(i);
            for (slot, &k) in keybuf.iter_mut().zip(key_idx) {
                *slot = row[k];
            }
            let (s, new) = grouper.intern(&keybuf);
            if new {
                postings.push(Vec::new());
            }
            postings[s].push(i as u32);
        }
        JoinIndex { grouper, postings }
    }

    /// Build rows whose key equals `key`, in insertion order.
    #[inline]
    pub fn matches(&self, key: &[Value]) -> Option<&[u32]> {
        self.grouper.get(key).map(|s| self.postings[s].as_slice())
    }
}

/// Probe-and-emit kernel for a **right-side** build: stream `left` rows in
/// `range` against the index, emitting output rows straight into columnar
/// buffers (left values, then right extras; probability product). This is
/// the serial join's exact output for that probe range, so parallel chunks
/// stitched in morsel order agree bit for bit.
pub(crate) fn probe_emit<P: ProbValue>(
    spec: &JoinSpec,
    left: &ProbRelation<P>,
    right: &ProbRelation<P>,
    index: &JoinIndex,
    range: Range<usize>,
) -> (Vec<Value>, Vec<P>) {
    let mut data = Vec::new();
    let mut probs = Vec::new();
    let mut keybuf = vec![Value(0); spec.left_key.len()];
    for i in range {
        let row = left.row(i);
        for (slot, &k) in keybuf.iter_mut().zip(&spec.left_key) {
            *slot = row[k];
        }
        let Some(matches) = index.matches(&keybuf) else {
            continue;
        };
        let p = left.prob(i);
        for &j in matches {
            let orow = right.row(j as usize);
            data.extend_from_slice(row);
            for &e in &spec.other_extra {
                data.push(orow[e]);
            }
            probs.push(p.mul(right.prob(j as usize)));
        }
    }
    (data, probs)
}

/// Probe kernel for a **left-side** build (the left input was smaller):
/// stream `right` rows in `range` against an index over the left, emitting
/// `(left row, right row)` id pairs. Within the range, pairs come out
/// right-ascending; [`pairs_by_left`] then restores the output order.
pub(crate) fn probe_pairs<P: ProbValue>(
    index_on_left: &JoinIndex,
    right: &ProbRelation<P>,
    right_key: &[usize],
    range: Range<usize>,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut keybuf = vec![Value(0); right_key.len()];
    for j in range {
        let row = right.row(j);
        for (slot, &k) in keybuf.iter_mut().zip(right_key) {
            *slot = row[k];
        }
        if let Some(lefts) = index_on_left.matches(&keybuf) {
            for &i in lefts {
                out.push((i, j as u32));
            }
        }
    }
    out
}

/// Stable counting sort of join pairs by left row id: the result is
/// left-major with right ids ascending per left row — exactly the order a
/// right-side build emits, so build-side selection never changes output.
pub(crate) fn pairs_by_left(pairs: &[(u32, u32)], left_len: usize) -> Vec<(u32, u32)> {
    let mut counts = vec![0u32; left_len + 1];
    for &(i, _) in pairs {
        counts[i as usize + 1] += 1;
    }
    for k in 1..counts.len() {
        counts[k] += counts[k - 1];
    }
    let mut out = vec![(0u32, 0u32); pairs.len()];
    for &(i, j) in pairs {
        let c = &mut counts[i as usize];
        out[*c as usize] = (i, j);
        *c += 1;
    }
    out
}

/// Emission kernel over join id pairs: materialize each `(left, right)`
/// pair into the columnar output (left values, right extras, probability
/// product). Shared by the serial build-left join and its morsel-parallel
/// emission.
pub(crate) fn emit_pairs<P: ProbValue>(
    spec: &JoinSpec,
    left: &ProbRelation<P>,
    right: &ProbRelation<P>,
    pairs: &[(u32, u32)],
) -> (Vec<Value>, Vec<P>) {
    let mut data = Vec::with_capacity(pairs.len() * spec.out_cols.len());
    let mut probs = Vec::with_capacity(pairs.len());
    for &(i, j) in pairs {
        let row = left.row(i as usize);
        let orow = right.row(j as usize);
        data.extend_from_slice(row);
        for &e in &spec.other_extra {
            data.push(orow[e]);
        }
        probs.push(left.prob(i as usize).mul(right.prob(j as usize)));
    }
    (data, probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(cols: &[u32], rows: &[(&[u64], f64)]) -> ProbRelation<f64> {
        let mut out = ProbRelation::new(cols.iter().map(|&c| Var(c)).collect());
        for (vals, p) in rows {
            let row: Vec<Value> = vals.iter().map(|&v| Value(v)).collect();
            out.push(&row, *p);
        }
        out
    }

    #[test]
    fn scalars() {
        assert_eq!(ProbRelation::<f64>::certain().scalar(), 1.0);
        assert_eq!(ProbRelation::<f64>::never().scalar(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-Boolean")]
    fn scalar_requires_zero_columns() {
        let _ = rel(&[0], &[(&[1], 0.5)]).scalar();
    }

    #[test]
    fn flat_buffer_layout() {
        let r = rel(&[0, 1], &[(&[1, 2], 0.5), (&[3, 4], 0.25)]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.values(), &[Value(1), Value(2), Value(3), Value(4)]);
        assert_eq!(r.row(1), &[Value(3), Value(4)]);
        assert_eq!(*r.prob(1), 0.25);
        let collected: Vec<_> = r.iter().map(|(row, p)| (row.to_vec(), *p)).collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].1, 0.5);
    }

    #[test]
    #[should_panic(expected = "stride invariant")]
    fn from_parts_checks_stride() {
        let _ = ProbRelation::from_parts(vec![Var(0), Var(1)], vec![Value(1)], vec![0.5f64]);
    }

    #[test]
    fn join_on_common_column() {
        let r = rel(&[0], &[(&[1], 0.5), (&[2], 0.25)]);
        let s = rel(&[0, 1], &[(&[1, 7], 0.5), (&[1, 8], 0.5), (&[3, 9], 0.5)]);
        let j = r.independent_join(&s);
        assert_eq!(j.cols(), &[Var(0), Var(1)]);
        assert_eq!(j.len(), 2); // only x = 1 matches
        for (_, p) in j.iter() {
            assert_eq!(*p, 0.25);
        }
    }

    #[test]
    fn join_disjoint_schemas_is_cartesian() {
        let r = rel(&[0], &[(&[1], 0.5)]);
        let s = rel(&[1], &[(&[7], 0.5), (&[8], 0.25)]);
        let j = r.independent_join(&s);
        assert_eq!(j.len(), 2);
        assert_eq!(j.cols().len(), 2);
    }

    #[test]
    fn join_with_certain_is_identity() {
        let r = rel(&[0], &[(&[1], 0.5), (&[2], 0.25)]);
        let j = ProbRelation::certain().independent_join(&r);
        assert_eq!(j.len(), 2);
        let probs: Vec<f64> = j.probs().to_vec();
        assert_eq!(probs, vec![0.5, 0.25]);
    }

    /// Build-side selection must be invisible: a join where the left input
    /// is smaller (build-left path) emits exactly the rows and order the
    /// build-right path would.
    #[test]
    fn build_side_selection_preserves_output_order() {
        // Left (2 rows) smaller than right (5 rows) → build-left path.
        let l = rel(&[0], &[(&[1], 0.5), (&[2], 0.25)]);
        let r = rel(
            &[0, 1],
            &[
                (&[2, 9], 0.5),
                (&[1, 7], 0.5),
                (&[1, 8], 0.25),
                (&[3, 6], 0.5),
                (&[2, 5], 0.125),
            ],
        );
        let j = l.independent_join(&r);
        // Expected: probe-major over l, per key right rows ascending.
        let spec = join_spec(l.cols(), r.cols());
        let index = JoinIndex::build(&r, &spec.other_key);
        let (data, probs) = probe_emit(&spec, &l, &r, &index, 0..l.len());
        let reference = ProbRelation::from_parts(spec.out_cols, data, probs);
        assert_eq!(j, reference);
        assert_eq!(j.len(), 4);
        assert_eq!(j.row(0), &[Value(1), Value(7)]);
        assert_eq!(j.row(1), &[Value(1), Value(8)]);
        assert_eq!(j.row(2), &[Value(2), Value(9)]);
        assert_eq!(j.row(3), &[Value(2), Value(5)]);
    }

    #[test]
    fn project_combines_independent_rows() {
        let s = rel(&[0, 1], &[(&[1, 7], 0.5), (&[1, 8], 0.5), (&[2, 9], 0.25)]);
        let p = s.independent_project(&[Var(0)]);
        assert_eq!(p.cols(), &[Var(0)]);
        assert_eq!(p.len(), 2);
        let x1 = p.iter().find(|(r, _)| r[0] == Value(1)).unwrap();
        assert!((x1.1 - 0.75).abs() < 1e-12);
        let x2 = p.iter().find(|(r, _)| r[0] == Value(2)).unwrap();
        assert!((x2.1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn project_to_scalar() {
        let s = rel(&[0], &[(&[1], 0.5), (&[2], 0.5)]);
        let p = s.independent_project(&[]);
        assert!((p.scalar() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn project_of_empty_is_never() {
        let s = rel(&[0], &[]);
        assert_eq!(s.independent_project(&[]).scalar(), 0.0);
    }

    #[test]
    fn select_filters_rows() {
        let s = rel(&[0, 1], &[(&[1, 7], 0.5), (&[2, 1], 0.5)]);
        let f = s.select(|row| row[0] < row[1]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.row(0)[0], Value(1));
    }

    // --- Grouper: packed keys and collision handling at arity 1, 2, 3 ---

    fn v(vals: &[u64]) -> Vec<Value> {
        vals.iter().map(|&x| Value(x)).collect()
    }

    #[test]
    fn grouper_arity0_has_one_slot() {
        let mut g = Grouper::new(0);
        assert_eq!(g.get(&[]), None);
        assert_eq!(g.intern(&[]), (0, true));
        assert_eq!(g.intern(&[]), (0, false));
        assert_eq!(g.get(&[]), Some(0));
        assert_eq!(g.len(), 1);
        assert_eq!(g.key(0), &[] as &[Value]);
    }

    #[test]
    fn grouper_arity1_packs_exactly() {
        let mut g = Grouper::new(1);
        // Values straddling the whole u64 range stay distinct — packing is
        // the identity, never a hash.
        let keys = [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63];
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(g.intern(&v(&[k])), (i, true), "key {k}");
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(g.intern(&v(&[k])), (i, false));
            assert_eq!(g.get(&v(&[k])), Some(i));
            assert_eq!(g.key(i), v(&[k]).as_slice());
        }
        assert_eq!(g.get(&v(&[7])), None);
    }

    #[test]
    fn grouper_arity2_packs_exactly() {
        let mut g = Grouper::new(2);
        // (a, b) and (b, a) — and boundary values — must never merge: the
        // u128 pack is position-exact.
        let keys: [(u64, u64); 6] = [
            (1, 2),
            (2, 1),
            (0, u64::MAX),
            (u64::MAX, 0),
            (u64::MAX, u64::MAX),
            (0, 0),
        ];
        for (i, &(a, b)) in keys.iter().enumerate() {
            assert_eq!(g.intern(&v(&[a, b])), (i, true), "key ({a},{b})");
        }
        for (i, &(a, b)) in keys.iter().enumerate() {
            assert_eq!(g.get(&v(&[a, b])), Some(i));
        }
        assert_eq!(g.len(), keys.len());
    }

    #[test]
    fn grouper_arity3_uses_hash_fallback_with_collision_chains() {
        // Constant hash: every key collides; correctness must come from the
        // chain's key comparison alone.
        let mut g = Grouper::with_constant_hash(3);
        let keys: [[u64; 3]; 4] = [[1, 2, 3], [3, 2, 1], [1, 2, 4], [0, 0, 0]];
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(g.intern(&v(k)), (i, true), "key {k:?}");
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(g.intern(&v(k)), (i, false));
            assert_eq!(g.get(&v(k)), Some(i));
            assert_eq!(g.key(i), v(k).as_slice());
        }
        assert_eq!(g.get(&v(&[9, 9, 9])), None);
        assert_eq!(g.len(), keys.len());
    }

    #[test]
    fn grouper_arity3_normal_hash_agrees_with_forced_collisions() {
        // The same interning sequence through the production hash and the
        // all-collide hash must assign identical slots.
        let mut a = Grouper::new(3);
        let mut b = Grouper::with_constant_hash(3);
        let keys: Vec<[u64; 3]> = (0..50u64).map(|i| [i % 5, (i / 5) % 5, i % 3]).collect();
        for k in &keys {
            assert_eq!(a.intern(&v(k)), b.intern(&v(k)), "key {k:?}");
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn pairs_by_left_is_stable_counting_sort() {
        let pairs = vec![(2u32, 0u32), (0, 1), (2, 3), (1, 4), (0, 5)];
        let sorted = pairs_by_left(&pairs, 3);
        assert_eq!(sorted, vec![(0, 1), (0, 5), (1, 4), (2, 0), (2, 3)]);
    }
}
