//! Probabilistic relations: the values flowing between plan operators.

use cq::{Value, Var};
use lineage::ProbValue;
use std::collections::BTreeMap;

/// A relation whose rows carry marginal probabilities of *mutually
/// independent* events. Operator correctness (product for joins,
/// `1 − Π(1−p)` for projections) relies on the independence discipline the
/// plan compiler enforces: rows of one relation pin disjoint tuple sets, and
/// joined relations touch disjoint relation symbols.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbRelation<P> {
    /// Column schema: the query variables each position binds.
    pub cols: Vec<Var>,
    /// Rows: a value per column plus the row's event probability.
    pub rows: Vec<(Vec<Value>, P)>,
}

impl<P: ProbValue> ProbRelation<P> {
    pub fn new(cols: Vec<Var>) -> Self {
        ProbRelation {
            cols,
            rows: Vec::new(),
        }
    }

    /// The zero-column, one-row relation of probability 1 — the unit of
    /// independent join; a Boolean "true" scalar.
    pub fn certain() -> Self {
        ProbRelation {
            cols: Vec::new(),
            rows: vec![(Vec::new(), P::one())],
        }
    }

    /// The zero-column, zero-row relation — a Boolean "false" scalar.
    pub fn never() -> Self {
        ProbRelation {
            cols: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Position of variable `v` in the schema.
    pub fn col_index(&self, v: Var) -> Option<usize> {
        self.cols.iter().position(|&c| c == v)
    }

    /// For a Boolean (zero-column) relation: the scalar probability.
    ///
    /// # Panics
    /// If the relation has columns or more than one row.
    pub fn scalar(&self) -> P {
        assert!(self.cols.is_empty(), "scalar() on non-Boolean relation");
        match self.rows.len() {
            0 => P::zero(),
            1 => self.rows[0].1.clone(),
            n => panic!("Boolean relation with {n} rows"),
        }
    }

    /// Natural join, multiplying probabilities. Correct when the two
    /// relations' row events are independent (disjoint relation symbols —
    /// guaranteed for self-join-free plans).
    pub fn independent_join(&self, other: &ProbRelation<P>) -> ProbRelation<P> {
        let spec = join_spec(&self.cols, &other.cols);
        // Hash the smaller side in a real engine; here: hash `other`.
        let index = build_join_index(&other.rows, &spec.other_key);
        let rows = probe_join_rows(&spec, &self.rows, &index, &other.rows);
        ProbRelation {
            cols: spec.out_cols,
            rows,
        }
    }

    /// Independent project: keep columns `keep`, combining collapsing rows
    /// with `1 − Π (1 − p)`. Correct when rows mapping to the same group are
    /// independent events (distinct values of the projected-away root
    /// variable pin disjoint tuples).
    ///
    /// # Panics
    /// If some column in `keep` is not in the schema.
    pub fn independent_project(&self, keep: &[Var]) -> ProbRelation<P> {
        let key_idx: Vec<usize> = keep
            .iter()
            .map(|&v| self.col_index(v).expect("projection column missing"))
            .collect();
        // Accumulate Π(1−p) per group, preserving first-seen group order.
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut none: BTreeMap<Vec<Value>, P> = BTreeMap::new();
        for (row, p) in &self.rows {
            let key: Vec<Value> = key_idx.iter().map(|&k| row[k]).collect();
            match none.get_mut(&key) {
                Some(acc) => *acc = acc.mul(&p.complement()),
                None => {
                    none.insert(key.clone(), p.complement());
                    order.push(key);
                }
            }
        }
        let mut out = ProbRelation::new(keep.to_vec());
        for key in order {
            let p = none[&key].complement();
            out.rows.push((key, p));
        }
        out
    }

    /// Filter rows by a predicate over the bound values.
    pub fn select(&self, pred: impl Fn(&[Value]) -> bool) -> ProbRelation<P> {
        ProbRelation {
            cols: self.cols.clone(),
            rows: self
                .rows
                .iter()
                .filter(|(row, _)| pred(row))
                .cloned()
                .collect(),
        }
    }
}

/// Column bookkeeping of a natural join, shared between the serial
/// [`ProbRelation::independent_join`] and the parallel probe so both
/// produce identical schemas and row layouts.
pub(crate) struct JoinSpec {
    /// Key positions of the join columns in the probe (left) side.
    pub left_key: Vec<usize>,
    /// Key positions of the join columns in the build (right) side.
    pub other_key: Vec<usize>,
    /// Right-side columns that are not join columns, in schema order.
    pub other_extra: Vec<usize>,
    /// Output schema: left columns, then the right extras.
    pub out_cols: Vec<Var>,
}

pub(crate) fn join_spec(left: &[Var], right: &[Var]) -> JoinSpec {
    let common: Vec<Var> = left.iter().copied().filter(|c| right.contains(c)).collect();
    let left_key: Vec<usize> = common
        .iter()
        .map(|c| left.iter().position(|l| l == c).unwrap())
        .collect();
    let other_key: Vec<usize> = common
        .iter()
        .map(|c| right.iter().position(|r| r == c).unwrap())
        .collect();
    let other_extra: Vec<usize> = (0..right.len())
        .filter(|&i| !common.contains(&right[i]))
        .collect();
    let mut out_cols = left.to_vec();
    out_cols.extend(other_extra.iter().map(|&i| right[i]));
    JoinSpec {
        left_key,
        other_key,
        other_extra,
        out_cols,
    }
}

/// Build-side hash index: join key → row indices in insertion order.
pub(crate) fn build_join_index<P>(
    rows: &[(Vec<Value>, P)],
    key: &[usize],
) -> BTreeMap<Vec<Value>, Vec<usize>> {
    let mut index: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
    for (i, (row, _)) in rows.iter().enumerate() {
        let k: Vec<Value> = key.iter().map(|&ki| row[ki]).collect();
        index.entry(k).or_default().push(i);
    }
    index
}

/// Probe `left_rows` against the build index, emitting matches in probe-row
/// order (and, per key, in build insertion order) — the serial join's exact
/// output order, so parallel probes stitched by morsel agree bit for bit.
pub(crate) fn probe_join_rows<P: ProbValue>(
    spec: &JoinSpec,
    left_rows: &[(Vec<Value>, P)],
    index: &BTreeMap<Vec<Value>, Vec<usize>>,
    other_rows: &[(Vec<Value>, P)],
) -> Vec<(Vec<Value>, P)> {
    let mut out = Vec::new();
    for (row, p) in left_rows {
        let key: Vec<Value> = spec.left_key.iter().map(|&k| row[k]).collect();
        let Some(matches) = index.get(&key) else {
            continue;
        };
        for &j in matches {
            let (orow, op) = &other_rows[j];
            let mut values = row.clone();
            values.extend(spec.other_extra.iter().map(|&i| orow[i]));
            out.push((values, p.mul(op)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(cols: &[u32], rows: &[(&[u64], f64)]) -> ProbRelation<f64> {
        ProbRelation {
            cols: cols.iter().map(|&c| Var(c)).collect(),
            rows: rows
                .iter()
                .map(|(vals, p)| (vals.iter().map(|&v| Value(v)).collect(), *p))
                .collect(),
        }
    }

    #[test]
    fn scalars() {
        assert_eq!(ProbRelation::<f64>::certain().scalar(), 1.0);
        assert_eq!(ProbRelation::<f64>::never().scalar(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-Boolean")]
    fn scalar_requires_zero_columns() {
        let _ = rel(&[0], &[(&[1], 0.5)]).scalar();
    }

    #[test]
    fn join_on_common_column() {
        let r = rel(&[0], &[(&[1], 0.5), (&[2], 0.25)]);
        let s = rel(&[0, 1], &[(&[1, 7], 0.5), (&[1, 8], 0.5), (&[3, 9], 0.5)]);
        let j = r.independent_join(&s);
        assert_eq!(j.cols, vec![Var(0), Var(1)]);
        assert_eq!(j.rows.len(), 2); // only x = 1 matches
        for (_, p) in &j.rows {
            assert_eq!(*p, 0.25);
        }
    }

    #[test]
    fn join_disjoint_schemas_is_cartesian() {
        let r = rel(&[0], &[(&[1], 0.5)]);
        let s = rel(&[1], &[(&[7], 0.5), (&[8], 0.25)]);
        let j = r.independent_join(&s);
        assert_eq!(j.rows.len(), 2);
        assert_eq!(j.cols.len(), 2);
    }

    #[test]
    fn join_with_certain_is_identity() {
        let r = rel(&[0], &[(&[1], 0.5), (&[2], 0.25)]);
        let j = ProbRelation::certain().independent_join(&r);
        assert_eq!(j.rows.len(), 2);
        let probs: Vec<f64> = j.rows.iter().map(|(_, p)| *p).collect();
        assert_eq!(probs, vec![0.5, 0.25]);
    }

    #[test]
    fn project_combines_independent_rows() {
        let s = rel(&[0, 1], &[(&[1, 7], 0.5), (&[1, 8], 0.5), (&[2, 9], 0.25)]);
        let p = s.independent_project(&[Var(0)]);
        assert_eq!(p.cols, vec![Var(0)]);
        assert_eq!(p.rows.len(), 2);
        let x1 = p.rows.iter().find(|(r, _)| r[0] == Value(1)).unwrap();
        assert!((x1.1 - 0.75).abs() < 1e-12);
        let x2 = p.rows.iter().find(|(r, _)| r[0] == Value(2)).unwrap();
        assert!((x2.1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn project_to_scalar() {
        let s = rel(&[0], &[(&[1], 0.5), (&[2], 0.5)]);
        let p = s.independent_project(&[]);
        assert!((p.scalar() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn project_of_empty_is_never() {
        let s = rel(&[0], &[]);
        assert_eq!(s.independent_project(&[]).scalar(), 0.0);
    }

    #[test]
    fn select_filters_rows() {
        let s = rel(&[0, 1], &[(&[1, 7], 0.5), (&[2, 1], 0.5)]);
        let f = s.select(|row| row[0] < row[1]);
        assert_eq!(f.rows.len(), 1);
        assert_eq!(f.rows[0].0[0], Value(1));
    }
}
