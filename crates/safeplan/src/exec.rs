//! Executing safe plans over a probabilistic database.
//!
//! The operator kernels in this module are **columnar and
//! allocation-free per row**: they read and write the flat-buffer layout
//! of [`ProbRelation`] (see `relation.rs` for the stride/alignment
//! invariants), scans push constants down to the `(column, value)`
//! posting lists [`pdb::ProbDb`] maintains, and joins hash whichever
//! input is smaller. Every kernel takes an explicit row range so the
//! serial executor (whole range) and the morsel-parallel executor
//! ([`crate::par`], one morsel at a time) run literally the same code —
//! the foundation of the bit-for-bit serial/parallel agreement invariant.
//!
//! The pre-columnar row-at-a-time executor survives in [`crate::rowref`]
//! as the correctness oracle and bench baseline.

use crate::node::PlanNode;
use crate::relation::{
    choose_build_side, emit_pairs, filter_rows, join_spec, pairs_by_left, probe_emit, probe_pairs,
    BuildSide, JoinIndex, ProbRelation,
};
use cq::{Atom, CompOp, Pred, Term, Value, Var};
use lineage::ProbValue;
use numeric::QRat;
use pdb::{ProbDb, RatProbs, TupleId};
use std::ops::Range;
use std::time::Instant;

/// Wall-clock nanoseconds spent inside each operator kind, exclusive of
/// child operators. On the DAG path concurrent tasks accrue in parallel,
/// so the sums read as CPU time, not elapsed time. Timing observes the
/// kernels from outside — it never feeds back into what they compute.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpTimes {
    pub scan_ns: u64,
    pub complement_ns: u64,
    pub select_ns: u64,
    pub join_ns: u64,
    pub project_ns: u64,
}

impl OpTimes {
    pub fn absorb(&mut self, other: &OpTimes) {
        self.scan_ns += other.scan_ns;
        self.complement_ns += other.complement_ns;
        self.select_ns += other.select_ns;
        self.join_ns += other.join_ns;
        self.project_ns += other.project_ns;
    }

    /// Total time attributed to operators.
    pub fn total_ns(&self) -> u64 {
        self.scan_ns + self.complement_ns + self.select_ns + self.join_ns + self.project_ns
    }
}

/// Operator-level counters of one extensional execution — what the data
/// plane actually did (as opposed to the per-thread timing counters the
/// worker pool reports). Deterministic for a fixed plan and database:
/// counts are taken at operator granularity, never inside morsels.
/// Equality compares the deterministic count fields only — [`OpTimes`]
/// varies run to run and is excluded, so the serial/parallel counter
/// agreement tests stay meaningful.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpCounters {
    /// Relation scans executed.
    pub scans: u64,
    /// Scans served from a constant-pushdown `(column, value)` posting
    /// list instead of the full relation.
    pub index_scans: u64,
    /// Tuple ids visited by scans (after pushdown).
    pub rows_scanned: u64,
    /// Tuples a full scan would have visited that pushdown skipped.
    pub rows_pruned: u64,
    /// Complement scans executed (negated sub-goals, Theorem 3.11).
    pub complement_scans: u64,
    /// Domain bindings enumerated by complement scans (kept separate from
    /// `rows_scanned` — they are generated, not read).
    pub complement_rows: u64,
    /// Independent joins executed (per pair of inputs).
    pub joins: u64,
    /// Joins whose build side was the left input (smaller than the right).
    pub joins_build_left: u64,
    /// Rows emitted by joins.
    pub join_rows: u64,
    /// Distinct groups across all independent-project aggregations.
    pub groups: u64,
    /// Shard fan-out the cost model chose for this execution (0 on the
    /// monolithic serial/morsel paths, ≥ 1 on the DAG/sharded path).
    pub shard_fanout: u64,
    /// Global-index lookups made while resolving scans (the relation list
    /// plus one per probed `(column, value)` posting list). Stays 0 on the
    /// shard-resident path — the acceptance gate for shard-local scans.
    pub global_index_probes: u64,
    /// Shard-local index lookups on the resident path (one per shard per
    /// probed list). 0 everywhere else.
    pub shard_index_probes: u64,
    /// Join stages whose build side was chosen by the posting-list cost
    /// model (the DAG executor decides sides from estimates *before* the
    /// inputs materialize, so the build can be scheduled early)…
    pub est_builds: u64,
    /// …of which this many disagreed with the materialized-row-count rule
    /// the serial executor applies (the output is bit-identical either
    /// way; only the hashed side differs).
    pub est_build_overrides: u64,
    /// Per-operator wall time (excluded from equality).
    pub times: OpTimes,
}

impl PartialEq for OpCounters {
    fn eq(&self, other: &Self) -> bool {
        self.scans == other.scans
            && self.index_scans == other.index_scans
            && self.rows_scanned == other.rows_scanned
            && self.rows_pruned == other.rows_pruned
            && self.complement_scans == other.complement_scans
            && self.complement_rows == other.complement_rows
            && self.joins == other.joins
            && self.joins_build_left == other.joins_build_left
            && self.join_rows == other.join_rows
            && self.groups == other.groups
            && self.shard_fanout == other.shard_fanout
            && self.global_index_probes == other.global_index_probes
            && self.shard_index_probes == other.shard_index_probes
            && self.est_builds == other.est_builds
            && self.est_build_overrides == other.est_build_overrides
    }
}

impl Eq for OpCounters {}

impl OpCounters {
    /// Add `other`'s counts into `self` — all fields are plain sums, so
    /// absorbing per-task counters in any order reproduces the operator
    /// totals a single-threaded pass would have accumulated.
    pub fn absorb(&mut self, other: &OpCounters) {
        self.scans += other.scans;
        self.index_scans += other.index_scans;
        self.rows_scanned += other.rows_scanned;
        self.rows_pruned += other.rows_pruned;
        self.complement_scans += other.complement_scans;
        self.complement_rows += other.complement_rows;
        self.joins += other.joins;
        self.joins_build_left += other.joins_build_left;
        self.join_rows += other.join_rows;
        self.groups += other.groups;
        self.shard_fanout = self.shard_fanout.max(other.shard_fanout);
        self.global_index_probes += other.global_index_probes;
        self.shard_index_probes += other.shard_index_probes;
        self.est_builds += other.est_builds;
        self.est_build_overrides += other.est_build_overrides;
        self.times.absorb(&other.times);
    }
}

/// Execute `plan` over `db`, with tuple probabilities supplied in
/// [`pdb::TupleId`] order (so the same plan runs on `f64` and on exact
/// rationals).
pub fn execute<P: ProbValue>(db: &ProbDb, probs: &[P], plan: &PlanNode) -> ProbRelation<P> {
    execute_counted(db, probs, plan, &mut OpCounters::default())
}

/// [`execute`], accumulating [`OpCounters`] along the way.
pub fn execute_counted<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    counters: &mut OpCounters,
) -> ProbRelation<P> {
    assert_eq!(probs.len(), db.num_tuples(), "probability vector length");
    exec_node(db, probs, plan, counters)
}

fn exec_node<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    counters: &mut OpCounters,
) -> ProbRelation<P> {
    match plan {
        PlanNode::Certain => ProbRelation::certain(),
        PlanNode::Never => ProbRelation::never(),
        PlanNode::Scan { atom } => {
            let _span = telemetry::span("scan");
            let t0 = Instant::now();
            let scan = ScanSpec::new(db, atom, counters);
            let (data, probs) = scan_rows(db, probs, &scan.plan, scan.ids);
            counters.times.scan_ns += t0.elapsed().as_nanos() as u64;
            ProbRelation::from_parts(scan.cols, data, probs)
        }
        PlanNode::ComplementScan { atom } => {
            let _span = telemetry::span("complement-scan");
            let t0 = Instant::now();
            let spec = ComplementSpec::new(db, atom, counters);
            let (data, probs) = complement_rows(db, probs, &spec, 0..spec.total);
            counters.times.complement_ns += t0.elapsed().as_nanos() as u64;
            ProbRelation::from_parts(spec.cols.clone(), data, probs)
        }
        PlanNode::Select { pred, input } => {
            let rel = exec_node(db, probs, input, counters);
            let _span = telemetry::span("select");
            let t0 = Instant::now();
            let cols = rel.cols().to_vec();
            let (data, probs) = filter_rows(&rel, 0..rel.len(), |row| eval_pred(pred, &cols, row));
            counters.times.select_ns += t0.elapsed().as_nanos() as u64;
            ProbRelation::from_parts(cols, data, probs)
        }
        PlanNode::IndependentJoin { inputs } => {
            let mut acc = ProbRelation::certain();
            for i in inputs {
                let right = exec_node(db, probs, i, counters);
                let _span = telemetry::span("join");
                let t0 = Instant::now();
                acc = join_counted(&acc, &right, counters);
                counters.times.join_ns += t0.elapsed().as_nanos() as u64;
            }
            acc
        }
        PlanNode::IndependentProject { keep, input } => {
            let rel = exec_node(db, probs, input, counters);
            let _span = telemetry::span("project");
            let t0 = Instant::now();
            let out = rel.independent_project(keep);
            counters.groups += out.len() as u64;
            counters.times.project_ns += t0.elapsed().as_nanos() as u64;
            out
        }
    }
}

/// The serial join with build-side accounting; the relation-level
/// [`ProbRelation::independent_join`] is this without the counters.
fn join_counted<P: ProbValue>(
    left: &ProbRelation<P>,
    right: &ProbRelation<P>,
    counters: &mut OpCounters,
) -> ProbRelation<P> {
    counters.joins += 1;
    let spec = join_spec(left.cols(), right.cols());
    let (data, probs) = match choose_build_side(left.len(), right.len()) {
        BuildSide::Right => {
            let index = JoinIndex::build(right, &spec.other_key);
            probe_emit(&spec, left, right, &index, 0..left.len())
        }
        BuildSide::Left => {
            counters.joins_build_left += 1;
            let index = JoinIndex::build(left, &spec.left_key);
            let pairs = probe_pairs(&index, right, &spec.other_key, 0..right.len());
            let pairs = pairs_by_left(&pairs, left.len());
            emit_pairs(&spec, left, right, &pairs)
        }
    };
    counters.join_rows += probs.len() as u64;
    ProbRelation::from_parts(spec.out_cols, data, probs)
}

/// `p(q)` of a Boolean plan in `f64` arithmetic.
pub fn query_probability(db: &ProbDb, plan: &PlanNode) -> f64 {
    execute(db, &db.prob_vector(), plan).scalar()
}

/// [`query_probability`] with operator counters.
pub fn query_probability_counted(db: &ProbDb, plan: &PlanNode, counters: &mut OpCounters) -> f64 {
    execute_counted(db, &db.prob_vector(), plan, counters).scalar()
}

/// `p(q)` of a Boolean plan in exact rational arithmetic.
pub fn query_probability_exact(db: &ProbDb, probs: &RatProbs, plan: &PlanNode) -> QRat {
    execute(db, probs.as_slice(), plan).scalar()
}

/// Execute a ranked plan (see [`crate::build_ranked_plan`]) and return one
/// `(head binding, marginal probability)` pair per candidate answer, with
/// the binding ordered as `head` — the whole answer set of a non-Boolean
/// query in a single set-at-a-time pass.
///
/// # Panics
/// If `plan` does not carry every variable of `head` as an output column
/// (i.e. it was built for a different head).
pub fn ranked_probabilities<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    head: &[Var],
) -> Vec<(Vec<Value>, P)> {
    let rel = execute(db, probs, plan);
    project_head(&rel, head)
}

/// [`ranked_probabilities`] accumulating operator counters into `counters`.
pub fn ranked_probabilities_counted<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    head: &[Var],
    counters: &mut OpCounters,
) -> Vec<(Vec<Value>, P)> {
    let rel = execute_counted(db, probs, plan, counters);
    project_head(&rel, head)
}

/// Read the `(head binding, probability)` pairs off a ranked plan's output
/// relation, with the binding ordered as `head` — shared by the serial and
/// parallel ranked paths so they cannot drift.
///
/// # Panics
/// If some head variable is not an output column of `rel`.
pub(crate) fn project_head<P: ProbValue>(
    rel: &ProbRelation<P>,
    head: &[Var],
) -> Vec<(Vec<Value>, P)> {
    let order: Vec<usize> = head
        .iter()
        .map(|&h| rel.col_index(h).expect("ranked plan carries head column"))
        .collect();
    rel.iter()
        .map(|(row, p)| {
            (
                order.iter().map(|&i| row[i]).collect::<Vec<Value>>(),
                p.clone(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

/// What one argument position of a scanned atom demands of a tuple, with
/// the per-tuple `position()` searches of the old row kernel hoisted out.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// Position must equal this constant.
    Const(Value),
    /// First occurrence of a variable: bind output column `col`.
    Bind(usize),
    /// Repeated variable: position must equal the value already bound to
    /// output column `col` (its first occurrence is at an earlier
    /// position, so the column is always bound before the check runs).
    Check(usize),
}

/// A compiled scan: per-position slots plus the output arity.
pub(crate) struct ScanPlan {
    slots: Vec<Slot>,
    arity: usize,
}

pub(crate) fn scan_plan(atom: &Atom, cols: &[Var]) -> ScanPlan {
    let mut seen = vec![false; cols.len()];
    let slots = atom
        .args
        .iter()
        .map(|term| match term {
            Term::Const(c) => Slot::Const(*c),
            Term::Var(v) => {
                let ci = cols.iter().position(|c| c == v).expect("own var");
                if seen[ci] {
                    Slot::Check(ci)
                } else {
                    seen[ci] = true;
                    Slot::Bind(ci)
                }
            }
        })
        .collect();
    ScanPlan {
        slots,
        arity: cols.len(),
    }
}

/// A scan's resolved inputs: output schema, compiled per-position slots,
/// and the tuple-id list to visit — the smallest constant-pushdown posting
/// list when the atom has constants, the full relation otherwise. The id
/// choice is a pure function of the atom and database, so the serial and
/// parallel executors always visit the same ids in the same order.
pub(crate) struct ScanSpec<'a> {
    pub cols: Vec<Var>,
    pub plan: ScanPlan,
    pub ids: &'a [TupleId],
}

impl<'a> ScanSpec<'a> {
    pub fn new(db: &'a ProbDb, atom: &Atom, counters: &mut OpCounters) -> Self {
        assert!(!atom.negated, "plans scan positive atoms only");
        let cols = atom.vars();
        let plan = scan_plan(atom, &cols);
        let all = db.tuples_of(atom.rel);
        counters.global_index_probes += 1;
        // Constant pushdown: visit the smallest `(column, value)` posting
        // list. Posting lists ascend in tuple id, so the surviving rows
        // come out in exactly the order a filtered full scan emits them.
        let mut best: Option<&[TupleId]> = None;
        for (pos, term) in atom.args.iter().enumerate() {
            if let Term::Const(c) = term {
                let list = db.tuples_with(atom.rel, pos, *c);
                counters.global_index_probes += 1;
                if best.is_none_or(|b| list.len() < b.len()) {
                    best = Some(list);
                }
            }
        }
        counters.scans += 1;
        let ids = match best {
            Some(list) => {
                counters.index_scans += 1;
                counters.rows_pruned += (all.len() - list.len()) as u64;
                list
            }
            None => all,
        };
        counters.rows_scanned += ids.len() as u64;
        ScanSpec { cols, plan, ids }
    }
}

/// The scan kernel over an explicit tuple-id slice: the serial scan passes
/// the whole id list, the parallel executor one morsel at a time. Rows
/// come back in `ids` order as columnar buffers, so stitching morsel
/// outputs in morsel order reproduces the serial scan exactly. The only
/// allocations are the output buffers and one scratch row.
pub(crate) fn scan_rows<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    plan: &ScanPlan,
    ids: &[TupleId],
) -> (Vec<Value>, Vec<P>) {
    let mut data: Vec<Value> = Vec::new();
    let mut out_probs: Vec<P> = Vec::new();
    let mut rowbuf = vec![Value(0); plan.arity];
    'tuples: for &tid in ids {
        let tuple = db.tuple(tid);
        for (pos, slot) in plan.slots.iter().enumerate() {
            let got = tuple.args[pos];
            match *slot {
                Slot::Const(c) => {
                    if got != c {
                        continue 'tuples;
                    }
                }
                Slot::Bind(ci) => rowbuf[ci] = got,
                Slot::Check(ci) => {
                    if rowbuf[ci] != got {
                        continue 'tuples;
                    }
                }
            }
        }
        data.extend_from_slice(&rowbuf);
        out_probs.push(probs[tid.0 as usize].clone());
    }
    (data, out_probs)
}

/// The scan kernel over an explicit subset of `ids`, given as ascending
/// positions — the per-shard variant. `at` holds indices into `ids` (one
/// shard's slice of the id space, ascending); surviving rows come back as
/// columnar buffers **plus the position each row came from**, so a k-way
/// merge of shard outputs by position reproduces the unsharded
/// [`scan_rows`] output bit for bit (filtering can drop rows, so
/// positions — not counts — are what the merge stitches by).
pub(crate) fn scan_rows_at<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    plan: &ScanPlan,
    ids: &[TupleId],
    at: &[u32],
) -> (Vec<Value>, Vec<P>, Vec<u32>) {
    let mut data: Vec<Value> = Vec::new();
    let mut out_probs: Vec<P> = Vec::new();
    let mut survivors: Vec<u32> = Vec::new();
    let mut rowbuf = vec![Value(0); plan.arity];
    'tuples: for &pos in at {
        let tid = ids[pos as usize];
        let tuple = db.tuple(tid);
        for (p, slot) in plan.slots.iter().enumerate() {
            let got = tuple.args[p];
            match *slot {
                Slot::Const(c) => {
                    if got != c {
                        continue 'tuples;
                    }
                }
                Slot::Bind(ci) => rowbuf[ci] = got,
                Slot::Check(ci) => {
                    if rowbuf[ci] != got {
                        continue 'tuples;
                    }
                }
            }
        }
        data.extend_from_slice(&rowbuf);
        out_probs.push(probs[tid.0 as usize].clone());
        survivors.push(pos);
    }
    (data, out_probs, survivors)
}

/// A sharded scan resolved entirely from shard-resident storage: one
/// tuple-id list per shard (shard-local posting lists on constant
/// pushdown, the resident relation lists otherwise), with **zero
/// global-index probes**.
pub(crate) struct ShardScanSpec<'a> {
    pub cols: Vec<Var>,
    pub plan: ScanPlan,
    /// Per-shard id lists to visit, ascending within each shard; together
    /// they partition exactly the id list [`ScanSpec::new`] would choose.
    pub shard_ids: Vec<&'a [TupleId]>,
    /// Whether a constant pushed down to a posting list. When false the
    /// scan covers whole relations and kernels can walk the resident
    /// columnar buffers directly instead of chasing ids.
    pub pushdown: bool,
}

impl<'a> ShardScanSpec<'a> {
    /// Resolve `atom` against the resident layout of `db` (the caller
    /// guarantees `db.shard_layout() == shards`). Replicates the
    /// smallest-posting-list choice of [`ScanSpec::new`] exactly: the
    /// per-shard lists partition the global lists, so the summed lengths
    /// equal the global lengths and the same column wins under the same
    /// strict `<` tie-break in argument order. Scan counters
    /// (`rows_scanned`, `rows_pruned`) therefore also match the
    /// monolithic figures; only `shard_index_probes` accrue.
    pub fn new(db: &'a ProbDb, atom: &Atom, shards: usize, counters: &mut OpCounters) -> Self {
        assert!(!atom.negated, "plans scan positive atoms only");
        debug_assert_eq!(db.shard_layout(), shards, "resident layout mismatch");
        let cols = atom.vars();
        let plan = scan_plan(atom, &cols);
        let all: Vec<&[TupleId]> = (0..shards)
            .map(|s| db.shard_tuples_of(s, atom.rel))
            .collect();
        counters.shard_index_probes += shards as u64;
        let all_len: usize = all.iter().map(|l| l.len()).sum();
        let mut best: Option<(Vec<&'a [TupleId]>, usize)> = None;
        for (pos, term) in atom.args.iter().enumerate() {
            if let Term::Const(c) = term {
                let lists: Vec<&[TupleId]> = (0..shards)
                    .map(|s| db.shard_tuples_with(s, atom.rel, pos, *c))
                    .collect();
                counters.shard_index_probes += shards as u64;
                let len: usize = lists.iter().map(|l| l.len()).sum();
                if best.as_ref().is_none_or(|(_, b)| len < *b) {
                    best = Some((lists, len));
                }
            }
        }
        counters.scans += 1;
        let (shard_ids, pushdown) = match best {
            Some((lists, len)) => {
                counters.index_scans += 1;
                counters.rows_pruned += (all_len - len) as u64;
                counters.rows_scanned += len as u64;
                (lists, true)
            }
            None => {
                counters.rows_scanned += all_len as u64;
                (all, false)
            }
        };
        ShardScanSpec {
            cols,
            plan,
            shard_ids,
            pushdown,
        }
    }
}

/// The id-keyed scan kernel for shard-local posting lists: like
/// [`scan_rows`], but each surviving row also reports its **tuple id** as
/// a `u32` merge key. Per-shard lists ascend and partition the global
/// list, so a k-way merge of shard outputs by id reproduces the
/// monolithic scan output bit for bit.
pub(crate) fn scan_rows_keyed<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    plan: &ScanPlan,
    ids: &[TupleId],
) -> (Vec<Value>, Vec<P>, Vec<u32>) {
    let mut data: Vec<Value> = Vec::new();
    let mut out_probs: Vec<P> = Vec::new();
    let mut keys: Vec<u32> = Vec::new();
    let mut rowbuf = vec![Value(0); plan.arity];
    'tuples: for &tid in ids {
        let tuple = db.tuple(tid);
        for (pos, slot) in plan.slots.iter().enumerate() {
            let got = tuple.args[pos];
            match *slot {
                Slot::Const(c) => {
                    if got != c {
                        continue 'tuples;
                    }
                }
                Slot::Bind(ci) => rowbuf[ci] = got,
                Slot::Check(ci) => {
                    if rowbuf[ci] != got {
                        continue 'tuples;
                    }
                }
            }
        }
        data.extend_from_slice(&rowbuf);
        out_probs.push(probs[tid.0 as usize].clone());
        keys.push(tid.0);
    }
    (data, out_probs, keys)
}

/// The id-keyed scan kernel over one shard's **resident columnar
/// buffer**: row values come straight off the shard's contiguous value
/// buffer (stride = relation arity), never touching global tuple storage
/// row by row. Emits the same `(data, probs, id keys)` triple as
/// [`scan_rows_keyed`] over the same ids.
pub(crate) fn scan_column_keyed<P: ProbValue>(
    col: &pdb::ShardColumn,
    probs: &[P],
    plan: &ScanPlan,
) -> (Vec<Value>, Vec<P>, Vec<u32>) {
    let stride = plan.slots.len();
    let mut data: Vec<Value> = Vec::new();
    let mut out_probs: Vec<P> = Vec::new();
    let mut keys: Vec<u32> = Vec::new();
    let mut rowbuf = vec![Value(0); plan.arity];
    'rows: for (i, &tid) in col.ids.iter().enumerate() {
        let args = &col.data[i * stride..(i + 1) * stride];
        for (pos, slot) in plan.slots.iter().enumerate() {
            let got = args[pos];
            match *slot {
                Slot::Const(c) => {
                    if got != c {
                        continue 'rows;
                    }
                }
                Slot::Bind(ci) => rowbuf[ci] = got,
                Slot::Check(ci) => {
                    if rowbuf[ci] != got {
                        continue 'rows;
                    }
                }
            }
        }
        data.extend_from_slice(&rowbuf);
        out_probs.push(probs[tid.0 as usize].clone());
        keys.push(tid.0);
    }
    (data, out_probs, keys)
}

/// The fused single-pass variant of resident sharded scanning for an
/// **inline** (one-worker) pool: k-way merges the shards' ascending id
/// lists while filtering straight off each shard's resident columnar
/// buffer, writing survivors directly into the output relation. This
/// skips the per-shard materialization and the separate merge walk the
/// parallel path needs — one pass, one copy — and emits exactly the rows
/// that path emits, in the same ascending-tuple-id order, so the output
/// bits cannot move. `shard_rows[s]` counts survivors per shard, the same
/// accounting the parallel path reports.
pub(crate) fn scan_columns_merged<P: ProbValue>(
    shards: &[Option<&pdb::ShardColumn>],
    probs: &[P],
    plan: &ScanPlan,
    cols: Vec<Var>,
    shard_rows: &mut [u64],
) -> ProbRelation<P> {
    let stride = plan.slots.len();
    let total: usize = shards.iter().map(|c| c.map_or(0, |c| c.ids.len())).sum();
    let mut out = ProbRelation::with_capacity(cols, total);
    // Full scans are overwhelmingly identity projections (every slot binds
    // the column it sits on); hoisting that check skips the per-row slot
    // walk and the staging buffer on the hot path.
    let identity = plan.arity == stride
        && plan
            .slots
            .iter()
            .enumerate()
            .all(|(pos, s)| matches!(*s, Slot::Bind(ci) if ci == pos));
    // One cursor per shard, with the head key cached so the per-row merge
    // is a min over `shards` integers — exhausted cursors park at a
    // sentinel above every real `u32` id.
    const DONE: u64 = u64::MAX;
    let k = shards.len();
    let mut cur = vec![0usize; k];
    let mut head = vec![DONE; k];
    for (s, col) in shards.iter().enumerate() {
        if let Some(col) = col {
            if let Some(&tid) = col.ids.first() {
                head[s] = tid.0 as u64;
            }
        }
    }
    let mut rowbuf = vec![Value(0); plan.arity];
    loop {
        let (mut best_key, mut s) = (DONE, 0usize);
        for (cand, &h) in head.iter().enumerate() {
            if h < best_key {
                best_key = h;
                s = cand;
            }
        }
        if best_key == DONE {
            return out;
        }
        let col = shards[s].expect("the picked cursor sits on a resident column");
        let i = cur[s];
        cur[s] = i + 1;
        head[s] = col.ids.get(i + 1).map_or(DONE, |t| t.0 as u64);
        let args = &col.data[i * stride..(i + 1) * stride];
        if identity {
            out.push(args, probs[best_key as usize].clone());
            shard_rows[s] += 1;
            continue;
        }
        let mut ok = true;
        for (pos, slot) in plan.slots.iter().enumerate() {
            let got = args[pos];
            match *slot {
                Slot::Const(c) => {
                    if got != c {
                        ok = false;
                        break;
                    }
                }
                Slot::Bind(ci) => rowbuf[ci] = got,
                Slot::Check(ci) => {
                    if rowbuf[ci] != got {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok {
            out.push(&rowbuf, probs[best_key as usize].clone());
            shard_rows[s] += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Complement scan
// ---------------------------------------------------------------------------

/// One row per binding of the atom's distinct variables over the evaluation
/// domain (active domain plus the atom's constants), with probability
/// `1 − p(tuple)` — absent tuples contribute certainty. This is the Theorem
/// 3.11 treatment of negated sub-goals, set-at-a-time; the `O(|domain|^k)`
/// row count matches the bound the tuple-at-a-time recurrence pays.
pub(crate) struct ComplementSpec {
    pub cols: Vec<Var>,
    pub domain: Vec<Value>,
    pub total: usize,
    rel: cq::RelId,
    /// Per argument position: the constant, or the binding column to read.
    arg_src: Vec<ArgSrc>,
}

#[derive(Clone, Copy)]
enum ArgSrc {
    Const(Value),
    Col(usize),
}

impl ComplementSpec {
    pub fn new(db: &ProbDb, atom: &Atom, counters: &mut OpCounters) -> Self {
        let cols = atom.vars();
        let domain = complement_domain(db, atom);
        let total = complement_row_count(cols.len(), domain.len());
        counters.complement_scans += 1;
        counters.complement_rows += total as u64;
        let arg_src = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => ArgSrc::Const(*c),
                Term::Var(v) => ArgSrc::Col(cols.iter().position(|c| c == v).expect("own var")),
            })
            .collect();
        ComplementSpec {
            cols,
            domain,
            total,
            rel: atom.rel,
            arg_src,
        }
    }
}

/// Evaluation domain of a complement scan: active domain plus the atom's
/// constants, in a fixed order shared by the serial and parallel paths.
pub(crate) fn complement_domain(db: &ProbDb, atom: &Atom) -> Vec<Value> {
    let mut domain: Vec<Value> = db.active_domain().into_iter().collect();
    for c in atom.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    domain
}

/// Rows a complement scan over `k` variables produces: `|domain|^k`, with
/// the `k == 0` ground atom contributing its single row.
pub(crate) fn complement_row_count(k: usize, domain_len: usize) -> usize {
    if k == 0 {
        1
    } else {
        // A count that overflows usize could never be materialized anyway.
        domain_len
            .checked_pow(k as u32)
            .expect("complement scan domain too large")
    }
}

/// The complement-scan kernel over a range of linearized bindings. Binding
/// `i` decodes base-`|domain|` with the *first* column most significant —
/// exactly the order the old odometer emitted — so morsel outputs stitched
/// in morsel order match the serial scan bit for bit. Scratch binding and
/// argument rows are reused across the whole range.
pub(crate) fn complement_rows<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    spec: &ComplementSpec,
    range: Range<usize>,
) -> (Vec<Value>, Vec<P>) {
    let k = spec.cols.len();
    let mut data: Vec<Value> = Vec::with_capacity(range.len() * k);
    let mut out_probs: Vec<P> = Vec::with_capacity(range.len());
    let mut binding = vec![Value(0); k];
    let mut args = vec![Value(0); spec.arg_src.len()];
    for i in range {
        let mut rem = i;
        for slot in binding.iter_mut().rev() {
            *slot = spec.domain[rem % spec.domain.len()];
            rem /= spec.domain.len();
        }
        for (a, src) in args.iter_mut().zip(&spec.arg_src) {
            *a = match *src {
                ArgSrc::Const(c) => c,
                ArgSrc::Col(ci) => binding[ci],
            };
        }
        let p = match db.find(spec.rel, &args) {
            Some(id) => probs[id.0 as usize].complement(),
            None => P::one(),
        };
        data.extend_from_slice(&binding);
        out_probs.push(p);
    }
    (data, out_probs)
}

pub(crate) fn eval_pred(pred: &Pred, cols: &[Var], row: &[Value]) -> bool {
    let resolve = |t: &Term| -> Value {
        match t {
            Term::Const(c) => *c,
            Term::Var(v) => {
                let i = cols.iter().position(|c| c == v).expect("select var bound");
                row[i]
            }
        }
    };
    let (l, r) = (resolve(&pred.lhs), resolve(&pred.rhs));
    match pred.op {
        CompOp::Lt => l < r,
        CompOp::Eq => l == r,
        CompOp::Ne => l != r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_plan;
    use cq::{parse_query, Query, Vocabulary};
    use dichotomy::eval_recurrence;
    use pdb::brute_force_probability;
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Safe queries exercising scans with constants, repeated variables,
    /// deep hierarchies, multiple components, and predicates.
    const SAFE_QUERIES: &[&str] = &[
        "R(x)",
        "R(x), S(x,y)",
        "R(x), S(x,y), U(x,y,z)",
        "R(x), T(z,w)",
        "R(1), S(1,y)",
        "S(x,y), x < y",
        "S(x,y), x != y",
        "R(x), S(x,y), x < y",
        "R(x), S(x,y), y != 1",
        "S(x,x)",
        "R(x), S(x,y), T2(x,z)",
        "S(u,v), T(u,v)",
        "R(x), S(x,y), U(x,y,z), V(x,w)",
    ];

    fn check(query_text: &str, seed: u64) {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, query_text).unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 4,
            prob_range: (0.1, 0.9),
        };
        for round in 0..4 {
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let by_plan = query_probability(&db, &plan);
            let by_rec = eval_recurrence(&db, &q).unwrap();
            assert!(
                (by_plan - by_rec).abs() < 1e-9,
                "round {round}: plan {by_plan} vs recurrence {by_rec} for {query_text}\nplan:\n{}",
                plan.display(&voc)
            );
            if db.num_tuples() <= 16 {
                let bf = brute_force_probability(&db, &q);
                assert!(
                    (by_plan - bf).abs() < 1e-9,
                    "round {round}: plan {by_plan} vs brute force {bf} for {query_text}"
                );
            }
        }
    }

    #[test]
    fn plans_match_recurrence_and_brute_force() {
        for (i, q) in SAFE_QUERIES.iter().enumerate() {
            check(q, 100 + i as u64);
        }
    }

    /// The columnar executor is bit-for-bit the row-at-a-time reference
    /// executor on every safe shape in the suite.
    #[test]
    fn columnar_matches_row_reference_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(0xC01);
        for text in SAFE_QUERIES {
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).unwrap();
            let plan = build_plan(&q).unwrap();
            let opts = RandomDbOptions {
                domain: 3,
                tuples_per_relation: 8,
                prob_range: (0.1, 0.9),
            };
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let probs = db.prob_vector();
            let col = execute(&db, &probs, &plan);
            let row = crate::rowref::row_execute(&db, &probs, &plan);
            assert_eq!(col.cols(), row.cols.as_slice(), "{text}");
            assert_eq!(col.len(), row.rows.len(), "{text}");
            for (i, (vals, p)) in row.rows.iter().enumerate() {
                assert_eq!(col.row(i), vals.as_slice(), "{text} row {i}");
                assert_eq!(col.prob(i), p, "{text} prob {i} (must be bit-identical)");
            }
        }
    }

    #[test]
    fn exact_execution_agrees_with_f64() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 3,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = RatProbs::from_db(&db);
        let exact = query_probability_exact(&db, &probs, &plan);
        let float = query_probability(&db, &plan);
        assert!((exact.to_f64() - float).abs() < 1e-12);
    }

    /// Negated-sub-goal queries (Theorem 3.11) compile to complement scans
    /// and must agree with the recurrence evaluator.
    #[test]
    fn negation_matches_recurrence() {
        for (i, text) in [
            "R(x), not T(x)",
            "R(x), not S(x,y)",
            "R(x), S(x,y), not U(x,y,z)",
            "R(x), not T(1)",
        ]
        .iter()
        .enumerate()
        {
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).unwrap();
            let plan = build_plan(&q).unwrap();
            let mut rng = StdRng::seed_from_u64(500 + i as u64);
            let opts = RandomDbOptions {
                domain: 3,
                tuples_per_relation: 3,
                prob_range: (0.1, 0.9),
            };
            for round in 0..4 {
                let db = random_db_for_query(&q, &voc, opts, &mut rng);
                let by_plan = query_probability(&db, &plan);
                let by_rec = eval_recurrence(&db, &q).unwrap();
                assert!(
                    (by_plan - by_rec).abs() < 1e-9,
                    "round {round}: plan {by_plan} vs recurrence {by_rec} for {text}\n{}",
                    plan.display(&voc)
                );
            }
        }
    }

    #[test]
    fn negation_exact_rational_agrees_with_f64() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), not T(x)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let t = voc.find_relation("T").unwrap();
        let mut db = ProbDb::new(voc);
        db.insert(r, vec![Value(1)], 0.5);
        db.insert(r, vec![Value(2)], 0.25);
        db.insert(t, vec![Value(1)], 0.75);
        let plan = build_plan(&q).unwrap();
        let probs = RatProbs::from_db(&db);
        let exact = query_probability_exact(&db, &probs, &plan);
        let float = query_probability(&db, &plan);
        assert!((exact.to_f64() - float).abs() < 1e-15);
        // p = 1 − (1 − 1/2·1/4)(1 − 1/4·1) = 1 − (7/8)(3/4) = 11/32.
        assert_eq!(exact, numeric::QRat::ratio(11, 32));
    }

    #[test]
    fn negated_ground_atom() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "not R(1)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let mut db = ProbDb::new(voc);
        db.insert(r, vec![Value(1)], 0.25);
        let plan = build_plan(&q).unwrap();
        assert!((query_probability(&db, &plan) - 0.75).abs() < 1e-12);
        // Absent tuple: certainty.
        let mut voc2 = Vocabulary::new();
        let q2 = parse_query(&mut voc2, "not R(7)").unwrap();
        let r2 = voc2.find_relation("R").unwrap();
        let mut db2 = ProbDb::new(voc2);
        db2.insert(r2, vec![Value(1)], 0.25);
        let plan2 = build_plan(&q2).unwrap();
        assert!((query_probability(&db2, &plan2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_scan_filters() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(1)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let mut db = ProbDb::new(voc);
        db.insert(r, vec![Value(1)], 0.25);
        db.insert(r, vec![Value(2)], 0.75);
        let plan = build_plan(&q).unwrap();
        assert!((query_probability(&db, &plan) - 0.25).abs() < 1e-12);
    }

    /// A constant atom must be served from the pushdown posting list —
    /// visiting only the matching ids — and still agree with the filtered
    /// full scan the row reference performs.
    #[test]
    fn constant_pushdown_prunes_and_agrees() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "S(x, 7)").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        for i in 0..50u64 {
            // Second column is 7 for i ∈ {0, 7, 10, 20, 30, 40}: six hits.
            db.insert(
                s,
                vec![Value(i), Value(if i % 10 == 0 { 7 } else { i })],
                0.3,
            );
        }
        let plan = build_plan(&q).unwrap();
        let mut counters = OpCounters::default();
        let p = query_probability_counted(&db, &plan, &mut counters);
        assert_eq!(counters.index_scans, 1, "{counters:?}");
        assert_eq!(counters.rows_scanned, 6, "{counters:?}");
        assert_eq!(counters.rows_pruned, 44, "{counters:?}");
        let row_p = crate::rowref::row_query_probability(&db, &plan);
        assert_eq!(p, row_p, "pushdown must not change the result bits");
    }

    /// Multiple constants: the scan picks the smallest posting list but
    /// still verifies every constant position.
    #[test]
    fn pushdown_picks_smallest_posting_list_and_verifies_rest() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "U(1, y, 5)").unwrap();
        let u = voc.find_relation("U").unwrap();
        let mut db = ProbDb::new(voc);
        // Column 0 = 1 matches 20 tuples, column 2 = 5 matches 2 tuples,
        // both constraints together match exactly 1.
        for i in 0..20u64 {
            db.insert(u, vec![Value(1), Value(i), Value(100 + i)], 0.5);
        }
        db.insert(u, vec![Value(1), Value(50), Value(5)], 0.25);
        db.insert(u, vec![Value(2), Value(51), Value(5)], 0.5);
        let plan = build_plan(&q).unwrap();
        let mut counters = OpCounters::default();
        let p = query_probability_counted(&db, &plan, &mut counters);
        assert_eq!(counters.rows_scanned, 2, "smallest list: {counters:?}");
        assert!((p - 0.25).abs() < 1e-12);
        assert_eq!(p, crate::rowref::row_query_probability(&db, &plan));
    }

    #[test]
    fn join_counters_report_build_side_selection() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        // R is tiny, the projected S is big: after the independent-project
        // of S down to [x] both sides reach the join, and the accumulator
        // (certain, 1 row) always builds left first.
        for i in 0..3u64 {
            db.insert(r, vec![Value(i)], 0.5);
        }
        for i in 0..30u64 {
            db.insert(s, vec![Value(i % 3), Value(100 + i)], 0.2);
        }
        let plan = build_plan(&q).unwrap();
        let mut counters = OpCounters::default();
        let p = query_probability_counted(&db, &plan, &mut counters);
        assert!(counters.joins >= 1, "{counters:?}");
        assert!(counters.joins_build_left >= 1, "{counters:?}");
        assert!(counters.groups >= 1, "{counters:?}");
        assert_eq!(p, crate::rowref::row_query_probability(&db, &plan));
    }

    #[test]
    fn repeated_variable_scan() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "S(x,x)").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        db.insert(s, vec![Value(1), Value(1)], 0.5);
        db.insert(s, vec![Value(1), Value(2)], 0.9);
        let plan = build_plan(&q).unwrap();
        assert!((query_probability(&db, &plan) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn never_and_certain_execute() {
        let mut voc = Vocabulary::new();
        let _ = voc.relation("R", 1).unwrap();
        let db = ProbDb::new(voc);
        assert_eq!(query_probability(&db, &PlanNode::Never), 0.0);
        assert_eq!(query_probability(&db, &PlanNode::Certain), 1.0);
        let plan = build_plan(&Query::truth()).unwrap();
        assert_eq!(query_probability(&db, &plan), 1.0);
    }

    #[test]
    fn empty_database_gives_zero() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let db = ProbDb::new(voc);
        let plan = build_plan(&q).unwrap();
        assert_eq!(query_probability(&db, &plan), 0.0);
    }
}
