//! Executing safe plans over a probabilistic database.

use crate::node::PlanNode;
use crate::relation::ProbRelation;
use cq::{Atom, CompOp, Pred, Term, Value};
use lineage::ProbValue;
use numeric::QRat;
use pdb::{ProbDb, RatProbs, TupleId};
use std::ops::Range;

/// Execute `plan` over `db`, with tuple probabilities supplied in
/// [`pdb::TupleId`] order (so the same plan runs on `f64` and on exact
/// rationals).
pub fn execute<P: ProbValue>(db: &ProbDb, probs: &[P], plan: &PlanNode) -> ProbRelation<P> {
    assert_eq!(probs.len(), db.num_tuples(), "probability vector length");
    match plan {
        PlanNode::Certain => ProbRelation::certain(),
        PlanNode::Never => ProbRelation::never(),
        PlanNode::Scan { atom } => scan(db, probs, atom),
        PlanNode::ComplementScan { atom } => complement_scan(db, probs, atom),
        PlanNode::Select { pred, input } => {
            let rel = execute(db, probs, input);
            let pred = *pred;
            let cols = rel.cols.clone();
            rel.select(|row| eval_pred(&pred, &cols, row))
        }
        PlanNode::IndependentJoin { inputs } => {
            let mut acc = ProbRelation::certain();
            for i in inputs {
                acc = acc.independent_join(&execute(db, probs, i));
            }
            acc
        }
        PlanNode::IndependentProject { keep, input } => {
            execute(db, probs, input).independent_project(keep)
        }
    }
}

/// `p(q)` of a Boolean plan in `f64` arithmetic.
pub fn query_probability(db: &ProbDb, plan: &PlanNode) -> f64 {
    execute(db, &db.prob_vector(), plan).scalar()
}

/// `p(q)` of a Boolean plan in exact rational arithmetic.
pub fn query_probability_exact(db: &ProbDb, probs: &RatProbs, plan: &PlanNode) -> QRat {
    execute(db, probs.as_slice(), plan).scalar()
}

/// Execute a ranked plan (see [`crate::build_ranked_plan`]) and return one
/// `(head binding, marginal probability)` pair per candidate answer, with
/// the binding ordered as `head` — the whole answer set of a non-Boolean
/// query in a single set-at-a-time pass.
///
/// # Panics
/// If `plan` does not carry every variable of `head` as an output column
/// (i.e. it was built for a different head).
pub fn ranked_probabilities<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    plan: &PlanNode,
    head: &[cq::Var],
) -> Vec<(Vec<Value>, P)> {
    let rel = execute(db, probs, plan);
    project_head(&rel, head)
}

/// Read the `(head binding, probability)` pairs off a ranked plan's output
/// relation, with the binding ordered as `head` — shared by the serial and
/// parallel ranked paths so they cannot drift.
///
/// # Panics
/// If some head variable is not an output column of `rel`.
pub(crate) fn project_head<P: ProbValue>(
    rel: &ProbRelation<P>,
    head: &[cq::Var],
) -> Vec<(Vec<Value>, P)> {
    let order: Vec<usize> = head
        .iter()
        .map(|&h| rel.col_index(h).expect("ranked plan carries head column"))
        .collect();
    rel.rows
        .iter()
        .map(|(row, p)| {
            (
                order.iter().map(|&i| row[i]).collect::<Vec<Value>>(),
                p.clone(),
            )
        })
        .collect()
}

fn scan<P: ProbValue>(db: &ProbDb, probs: &[P], atom: &Atom) -> ProbRelation<P> {
    assert!(!atom.negated, "plans scan positive atoms only");
    let cols = atom.vars();
    let rows = scan_rows(db, probs, atom, &cols, db.tuples_of(atom.rel));
    ProbRelation { cols, rows }
}

/// The scan kernel over an explicit tuple-id slice: the serial scan passes
/// the whole relation, the parallel executor one morsel at a time. Rows
/// come back in `ids` order, so stitching morsel outputs in morsel order
/// reproduces the serial scan exactly.
pub(crate) fn scan_rows<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    atom: &Atom,
    cols: &[cq::Var],
    ids: &[TupleId],
) -> Vec<(Vec<Value>, P)> {
    let mut out = Vec::new();
    'tuples: for &tid in ids {
        let tuple = db.tuple(tid);
        // Match constants and repeated variables positionally.
        let mut bound: Vec<Option<Value>> = vec![None; cols.len()];
        for (pos, term) in atom.args.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if tuple.args[pos] != *c {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    let ci = cols.iter().position(|c| c == v).expect("own var");
                    match bound[ci] {
                        None => bound[ci] = Some(tuple.args[pos]),
                        Some(prev) => {
                            if prev != tuple.args[pos] {
                                continue 'tuples;
                            }
                        }
                    }
                }
            }
        }
        let row: Vec<Value> = bound.into_iter().map(|b| b.expect("all bound")).collect();
        out.push((row, probs[tid.0 as usize].clone()));
    }
    out
}

/// One row per binding of the atom's distinct variables over the evaluation
/// domain (active domain plus the atom's constants), with probability
/// `1 − p(tuple)` — absent tuples contribute certainty. This is the Theorem
/// 3.11 treatment of negated sub-goals, set-at-a-time; the `O(|domain|^k)`
/// row count matches the bound the tuple-at-a-time recurrence pays.
fn complement_scan<P: ProbValue>(db: &ProbDb, probs: &[P], atom: &Atom) -> ProbRelation<P> {
    let cols = atom.vars();
    let domain = complement_domain(db, atom);
    let total = complement_row_count(cols.len(), domain.len());
    let rows = complement_rows(db, probs, atom, &cols, &domain, 0..total);
    ProbRelation { cols, rows }
}

/// Evaluation domain of a complement scan: active domain plus the atom's
/// constants, in a fixed order shared by the serial and parallel paths.
pub(crate) fn complement_domain(db: &ProbDb, atom: &Atom) -> Vec<Value> {
    let mut domain: Vec<Value> = db.active_domain().into_iter().collect();
    for c in atom.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    domain
}

/// Rows a complement scan over `k` variables produces: `|domain|^k`, with
/// the `k == 0` ground atom contributing its single row.
pub(crate) fn complement_row_count(k: usize, domain_len: usize) -> usize {
    if k == 0 {
        1
    } else {
        // A count that overflows usize could never be materialized anyway.
        domain_len
            .checked_pow(k as u32)
            .expect("complement scan domain too large")
    }
}

/// The complement-scan kernel over a range of linearized bindings. Binding
/// `i` decodes base-`|domain|` with the *first* column most significant —
/// exactly the order the old odometer emitted — so morsel outputs stitched
/// in morsel order match the serial scan bit for bit.
pub(crate) fn complement_rows<P: ProbValue>(
    db: &ProbDb,
    probs: &[P],
    atom: &Atom,
    cols: &[cq::Var],
    domain: &[Value],
    range: Range<usize>,
) -> Vec<(Vec<Value>, P)> {
    let k = cols.len();
    let mut out = Vec::with_capacity(range.len());
    for i in range {
        let mut binding = vec![Value(0); k];
        let mut rem = i;
        for slot in binding.iter_mut().rev() {
            *slot = domain[rem % domain.len()];
            rem /= domain.len();
        }
        let args: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => binding[cols.iter().position(|c| c == v).expect("own var")],
            })
            .collect();
        let p = match db.find(atom.rel, &args) {
            Some(id) => probs[id.0 as usize].complement(),
            None => P::one(),
        };
        out.push((binding, p));
    }
    out
}

pub(crate) fn eval_pred(pred: &Pred, cols: &[cq::Var], row: &[Value]) -> bool {
    let resolve = |t: &Term| -> Value {
        match t {
            Term::Const(c) => *c,
            Term::Var(v) => {
                let i = cols.iter().position(|c| c == v).expect("select var bound");
                row[i]
            }
        }
    };
    let (l, r) = (resolve(&pred.lhs), resolve(&pred.rhs));
    match pred.op {
        CompOp::Lt => l < r,
        CompOp::Eq => l == r,
        CompOp::Ne => l != r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_plan;
    use cq::{parse_query, Query, Vocabulary};
    use dichotomy::eval_recurrence;
    use pdb::brute_force_probability;
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Safe queries exercising scans with constants, repeated variables,
    /// deep hierarchies, multiple components, and predicates.
    const SAFE_QUERIES: &[&str] = &[
        "R(x)",
        "R(x), S(x,y)",
        "R(x), S(x,y), U(x,y,z)",
        "R(x), T(z,w)",
        "R(1), S(1,y)",
        "S(x,y), x < y",
        "S(x,y), x != y",
        "R(x), S(x,y), x < y",
        "R(x), S(x,y), y != 1",
        "S(x,x)",
        "R(x), S(x,y), T2(x,z)",
        "S(u,v), T(u,v)",
        "R(x), S(x,y), U(x,y,z), V(x,w)",
    ];

    fn check(query_text: &str, seed: u64) {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, query_text).unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 4,
            prob_range: (0.1, 0.9),
        };
        for round in 0..4 {
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let by_plan = query_probability(&db, &plan);
            let by_rec = eval_recurrence(&db, &q).unwrap();
            assert!(
                (by_plan - by_rec).abs() < 1e-9,
                "round {round}: plan {by_plan} vs recurrence {by_rec} for {query_text}\nplan:\n{}",
                plan.display(&voc)
            );
            if db.num_tuples() <= 16 {
                let bf = brute_force_probability(&db, &q);
                assert!(
                    (by_plan - bf).abs() < 1e-9,
                    "round {round}: plan {by_plan} vs brute force {bf} for {query_text}"
                );
            }
        }
    }

    #[test]
    fn plans_match_recurrence_and_brute_force() {
        for (i, q) in SAFE_QUERIES.iter().enumerate() {
            check(q, 100 + i as u64);
        }
    }

    #[test]
    fn exact_execution_agrees_with_f64() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let plan = build_plan(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 3,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = RatProbs::from_db(&db);
        let exact = query_probability_exact(&db, &probs, &plan);
        let float = query_probability(&db, &plan);
        assert!((exact.to_f64() - float).abs() < 1e-12);
    }

    /// Negated-sub-goal queries (Theorem 3.11) compile to complement scans
    /// and must agree with the recurrence evaluator.
    #[test]
    fn negation_matches_recurrence() {
        for (i, text) in [
            "R(x), not T(x)",
            "R(x), not S(x,y)",
            "R(x), S(x,y), not U(x,y,z)",
            "R(x), not T(1)",
        ]
        .iter()
        .enumerate()
        {
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).unwrap();
            let plan = build_plan(&q).unwrap();
            let mut rng = StdRng::seed_from_u64(500 + i as u64);
            let opts = RandomDbOptions {
                domain: 3,
                tuples_per_relation: 3,
                prob_range: (0.1, 0.9),
            };
            for round in 0..4 {
                let db = random_db_for_query(&q, &voc, opts, &mut rng);
                let by_plan = query_probability(&db, &plan);
                let by_rec = eval_recurrence(&db, &q).unwrap();
                assert!(
                    (by_plan - by_rec).abs() < 1e-9,
                    "round {round}: plan {by_plan} vs recurrence {by_rec} for {text}\n{}",
                    plan.display(&voc)
                );
            }
        }
    }

    #[test]
    fn negation_exact_rational_agrees_with_f64() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), not T(x)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let t = voc.find_relation("T").unwrap();
        let mut db = ProbDb::new(voc);
        db.insert(r, vec![Value(1)], 0.5);
        db.insert(r, vec![Value(2)], 0.25);
        db.insert(t, vec![Value(1)], 0.75);
        let plan = build_plan(&q).unwrap();
        let probs = RatProbs::from_db(&db);
        let exact = query_probability_exact(&db, &probs, &plan);
        let float = query_probability(&db, &plan);
        assert!((exact.to_f64() - float).abs() < 1e-15);
        // p = 1 − (1 − 1/2·1/4)(1 − 1/4·1) = 1 − (7/8)(3/4) = 11/32.
        assert_eq!(exact, numeric::QRat::ratio(11, 32));
    }

    #[test]
    fn negated_ground_atom() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "not R(1)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let mut db = ProbDb::new(voc);
        db.insert(r, vec![Value(1)], 0.25);
        let plan = build_plan(&q).unwrap();
        assert!((query_probability(&db, &plan) - 0.75).abs() < 1e-12);
        // Absent tuple: certainty.
        let mut voc2 = Vocabulary::new();
        let q2 = parse_query(&mut voc2, "not R(7)").unwrap();
        let r2 = voc2.find_relation("R").unwrap();
        let mut db2 = ProbDb::new(voc2);
        db2.insert(r2, vec![Value(1)], 0.25);
        let plan2 = build_plan(&q2).unwrap();
        assert!((query_probability(&db2, &plan2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_scan_filters() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(1)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let mut db = ProbDb::new(voc);
        db.insert(r, vec![Value(1)], 0.25);
        db.insert(r, vec![Value(2)], 0.75);
        let plan = build_plan(&q).unwrap();
        assert!((query_probability(&db, &plan) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn repeated_variable_scan() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "S(x,x)").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        db.insert(s, vec![Value(1), Value(1)], 0.5);
        db.insert(s, vec![Value(1), Value(2)], 0.9);
        let plan = build_plan(&q).unwrap();
        assert!((query_probability(&db, &plan) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn never_and_certain_execute() {
        let mut voc = Vocabulary::new();
        let _ = voc.relation("R", 1).unwrap();
        let db = ProbDb::new(voc);
        assert_eq!(query_probability(&db, &PlanNode::Never), 0.0);
        assert_eq!(query_probability(&db, &PlanNode::Certain), 1.0);
        let plan = build_plan(&Query::truth()).unwrap();
        assert_eq!(query_probability(&db, &plan), 1.0);
    }

    #[test]
    fn empty_database_gives_zero() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let db = ProbDb::new(voc);
        let plan = build_plan(&q).unwrap();
        assert_eq!(query_probability(&db, &plan), 0.0);
    }
}
