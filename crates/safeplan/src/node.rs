//! The safe-plan language.

use cq::{Atom, Pred, Term, Vocabulary};

/// One operator of an extensional safe plan. Executing a node yields a
/// [`crate::ProbRelation`]; a plan for a Boolean query yields a
/// zero-column scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanNode {
    /// Constant true: probability 1 (unit of independent join).
    Certain,
    /// Constant false: probability 0 (an unsatisfiable query).
    Never,
    /// Scan a relation, filtering by the atom's constants and repeated
    /// variables; output columns are the atom's distinct variables.
    Scan { atom: Atom },
    /// Scan the *complement* of a relation for a negated sub-goal
    /// (Theorem 3.11): one row per binding of the atom's variables over the
    /// evaluation domain, with probability `1 − p(tuple)`. Costs
    /// `O(|domain|^k)` for `k` distinct variables — the same bound the
    /// tuple-at-a-time recurrence pays.
    ComplementScan { atom: Atom },
    /// Filter by a restricted arithmetic predicate; all its variables must
    /// be columns of the input.
    Select { pred: Pred, input: Box<PlanNode> },
    /// Natural join multiplying probabilities; inputs touch disjoint
    /// relation symbols, so row events are independent.
    IndependentJoin { inputs: Vec<PlanNode> },
    /// Project to `keep`, combining collapsing rows with `1 − Π(1−p)`;
    /// sound because the projected-away variables occur in every sub-goal
    /// below, so distinct values pin disjoint tuples.
    IndependentProject {
        keep: Vec<cq::Var>,
        input: Box<PlanNode>,
    },
}

impl PlanNode {
    /// Number of operators in the plan.
    pub fn size(&self) -> usize {
        match self {
            PlanNode::Certain
            | PlanNode::Never
            | PlanNode::Scan { .. }
            | PlanNode::ComplementScan { .. } => 1,
            PlanNode::Select { input, .. } | PlanNode::IndependentProject { input, .. } => {
                1 + input.size()
            }
            PlanNode::IndependentJoin { inputs } => {
                1 + inputs.iter().map(PlanNode::size).sum::<usize>()
            }
        }
    }

    /// Height of the operator tree.
    pub fn depth(&self) -> usize {
        match self {
            PlanNode::Certain
            | PlanNode::Never
            | PlanNode::Scan { .. }
            | PlanNode::ComplementScan { .. } => 1,
            PlanNode::Select { input, .. } | PlanNode::IndependentProject { input, .. } => {
                1 + input.depth()
            }
            PlanNode::IndependentJoin { inputs } => {
                1 + inputs.iter().map(PlanNode::depth).max().unwrap_or(0)
            }
        }
    }

    /// Pretty-print the plan with relation and variable names resolved
    /// through `voc`, one operator per line, children indented.
    ///
    /// ```
    /// use cq::{parse_query, Vocabulary};
    /// use safeplan::build_plan;
    /// let mut voc = Vocabulary::new();
    /// let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
    /// let plan = build_plan(&q).unwrap();
    /// assert!(plan.display(&voc).starts_with("independent-project []"));
    /// ```
    pub fn display(&self, voc: &Vocabulary) -> String {
        let mut out = String::new();
        self.render(voc, 0, &mut out);
        out
    }

    fn render(&self, voc: &Vocabulary, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            PlanNode::Certain => out.push_str(&format!("{pad}certain\n")),
            PlanNode::Never => out.push_str(&format!("{pad}never\n")),
            PlanNode::Scan { atom } => {
                out.push_str(&format!("{pad}scan {}\n", atom.display(voc)));
            }
            PlanNode::ComplementScan { atom } => {
                out.push_str(&format!("{pad}complement-scan {}\n", atom.display(voc)));
            }
            PlanNode::Select { pred, input } => {
                out.push_str(&format!("{pad}select {}\n", display_pred(pred)));
                input.render(voc, indent + 1, out);
            }
            PlanNode::IndependentJoin { inputs } => {
                out.push_str(&format!("{pad}independent-join\n"));
                for i in inputs {
                    i.render(voc, indent + 1, out);
                }
            }
            PlanNode::IndependentProject { keep, input } => {
                let cols: Vec<String> = keep.iter().map(|v| format!("x{}", v.0)).collect();
                out.push_str(&format!("{pad}independent-project [{}]\n", cols.join(",")));
                input.render(voc, indent + 1, out);
            }
        }
    }
}

fn display_pred(p: &Pred) -> String {
    let t = |t: &Term| match t {
        Term::Var(v) => format!("x{}", v.0),
        Term::Const(c) => format!("{}", c.0),
    };
    let op = match p.op {
        cq::CompOp::Lt => "<",
        cq::CompOp::Eq => "=",
        cq::CompOp::Ne => "!=",
    };
    format!("{} {} {}", t(&p.lhs), op, t(&p.rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::{parse_query, Vocabulary};

    #[test]
    fn size_and_depth() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x)").unwrap();
        let scan = PlanNode::Scan {
            atom: q.atoms[0].clone(),
        };
        assert_eq!(scan.size(), 1);
        let proj = PlanNode::IndependentProject {
            keep: vec![],
            input: Box::new(scan.clone()),
        };
        assert_eq!(proj.size(), 2);
        assert_eq!(proj.depth(), 2);
        let join = PlanNode::IndependentJoin {
            inputs: vec![proj.clone(), PlanNode::Certain],
        };
        assert_eq!(join.size(), 4);
        assert_eq!(join.depth(), 3);
    }

    #[test]
    fn display_is_indented() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x)").unwrap();
        let plan = PlanNode::IndependentProject {
            keep: vec![],
            input: Box::new(PlanNode::Scan {
                atom: q.atoms[0].clone(),
            }),
        };
        let s = plan.display(&voc);
        assert!(s.starts_with("independent-project []\n"));
        assert!(s.contains("\n  scan R("));
    }
}
