//! DNF formulas over independent Boolean events.

use std::collections::BTreeSet;
use std::fmt;

/// A literal: event `var` asserted positively or negatively.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Lit {
    pub var: u32,
    pub positive: bool,
}

impl Lit {
    pub fn pos(var: u32) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    pub fn neg(var: u32) -> Self {
        Lit {
            var,
            positive: false,
        }
    }

    pub fn negated(self) -> Self {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

/// A conjunction of literals. Kept sorted and duplicate-free; a clause
/// containing complementary literals is *contradictory* and is dropped by
/// [`Dnf::add_clause`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Build a clause; returns `None` when contradictory (`x ∧ ¬x`).
    pub fn new(mut lits: Vec<Lit>) -> Option<Self> {
        lits.sort();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var == w[1].var {
                return None; // complementary pair (dedup removed equals)
            }
        }
        Some(Clause { lits })
    }

    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `self` subsumes `other` when every literal of `self` is in `other`
    /// (then `other ⇒ self` and `other` is redundant in a DNF containing
    /// `self`).
    pub fn subsumes(&self, other: &Clause) -> bool {
        // Both sorted: linear merge check.
        let mut it = other.lits.iter();
        'outer: for l in &self.lits {
            for m in it.by_ref() {
                if m == l {
                    continue 'outer;
                }
                if m > l {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Condition on `var := value`. Returns:
    /// * `None` — clause became false,
    /// * `Some(clause)` — remaining clause (possibly empty = true).
    pub fn condition(&self, var: u32, value: bool) -> Option<Clause> {
        let mut lits = Vec::with_capacity(self.lits.len());
        for &l in &self.lits {
            if l.var == var {
                if l.positive != value {
                    return None;
                }
            } else {
                lits.push(l);
            }
        }
        Some(Clause { lits })
    }

    /// Is the clause satisfied by a world given as a presence bitmap?
    pub fn satisfied_by(&self, world: &[bool]) -> bool {
        self.lits
            .iter()
            .all(|l| world[l.var as usize] == l.positive)
    }

    /// Probability of the clause under independent events.
    pub fn prob(&self, probs: &[f64]) -> f64 {
        self.lits
            .iter()
            .map(|l| {
                let p = probs[l.var as usize];
                if l.positive {
                    p
                } else {
                    1.0 - p
                }
            })
            .product()
    }
}

/// A DNF: disjunction of clauses. `Dnf::default()` is the constant *false*;
/// a DNF containing the empty clause is the constant *true*.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Dnf {
    pub clauses: Vec<Clause>,
}

impl Dnf {
    pub fn new() -> Self {
        Self::default()
    }

    /// The constant-true DNF.
    pub fn truth() -> Self {
        Dnf {
            clauses: vec![Clause { lits: vec![] }],
        }
    }

    /// Add a clause from raw literals; contradictory or duplicate clauses
    /// are silently dropped.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        if let Some(c) = Clause::new(lits) {
            if !self.clauses.contains(&c) {
                self.clauses.push(c);
            }
        }
    }

    pub fn is_false(&self) -> bool {
        self.clauses.is_empty()
    }

    pub fn is_true(&self) -> bool {
        self.clauses.iter().any(|c| c.is_empty())
    }

    /// All event variables mentioned.
    pub fn vars(&self) -> BTreeSet<u32> {
        self.clauses
            .iter()
            .flat_map(|c| c.lits.iter().map(|l| l.var))
            .collect()
    }

    /// Largest variable id + 1 (the size a `probs` slice must have).
    pub fn num_vars(&self) -> usize {
        self.vars().iter().max().map_or(0, |&v| v as usize + 1)
    }

    /// Remove subsumed clauses (absorption).
    pub fn absorb(&mut self) {
        let mut keep: Vec<Clause> = Vec::new();
        // Shorter clauses subsume longer ones; process by length.
        let mut sorted = self.clauses.clone();
        sorted.sort_by_key(|c| c.len());
        'outer: for c in sorted {
            for k in &keep {
                if k.subsumes(&c) {
                    continue 'outer;
                }
            }
            keep.push(c);
        }
        self.clauses = keep;
    }

    /// Truth under a world bitmap.
    pub fn satisfied_by(&self, world: &[bool]) -> bool {
        self.clauses.iter().any(|c| c.satisfied_by(world))
    }

    /// Condition every clause on `var := value`.
    pub fn condition(&self, var: u32, value: bool) -> Dnf {
        Dnf {
            clauses: self
                .clauses
                .iter()
                .filter_map(|c| c.condition(var, value))
                .collect(),
        }
    }

    /// Disjunction.
    pub fn or(&self, other: &Dnf) -> Dnf {
        let mut out = self.clone();
        for c in &other.clauses {
            if !out.clauses.contains(c) {
                out.clauses.push(c.clone());
            }
        }
        out
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_false() {
            return write!(f, "false");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            if c.is_empty() {
                write!(f, "true")?;
            }
            for (j, l) in c.lits.iter().enumerate() {
                if j > 0 {
                    write!(f, "&")?;
                }
                if !l.positive {
                    write!(f, "!")?;
                }
                write!(f, "e{}", l.var)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contradictory_clause_dropped() {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::neg(0)]);
        assert!(d.is_false());
    }

    #[test]
    fn duplicate_literals_dedupe() {
        let c = Clause::new(vec![Lit::pos(1), Lit::pos(1), Lit::pos(0)]).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn truth_and_falsity() {
        assert!(Dnf::new().is_false());
        assert!(Dnf::truth().is_true());
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(3)]);
        assert!(!d.is_false() && !d.is_true());
    }

    #[test]
    fn subsumption() {
        let small = Clause::new(vec![Lit::pos(0)]).unwrap();
        let big = Clause::new(vec![Lit::pos(0), Lit::pos(1)]).unwrap();
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        let other = Clause::new(vec![Lit::neg(0), Lit::pos(1)]).unwrap();
        assert!(!small.subsumes(&other));
    }

    #[test]
    fn absorb_removes_supersets() {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        d.add_clause(vec![Lit::pos(0)]);
        d.add_clause(vec![Lit::pos(2), Lit::pos(1)]);
        d.absorb();
        assert_eq!(d.clauses.len(), 2);
    }

    #[test]
    fn conditioning() {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        d.add_clause(vec![Lit::neg(0)]);
        let t = d.condition(0, true);
        assert_eq!(t.clauses.len(), 1); // {1}
        assert_eq!(t.clauses[0].lits(), &[Lit::pos(1)]);
        let f = d.condition(0, false);
        assert!(f.is_true()); // ¬e0 clause became empty
    }

    #[test]
    fn world_satisfaction() {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::neg(1)]);
        assert!(d.satisfied_by(&[true, false]));
        assert!(!d.satisfied_by(&[true, true]));
        assert!(!d.satisfied_by(&[false, false]));
    }

    #[test]
    fn clause_probability() {
        let c = Clause::new(vec![Lit::pos(0), Lit::neg(1)]).unwrap();
        let p = c.prob(&[0.5, 0.25]);
        assert!((p - 0.5 * 0.75).abs() < 1e-12);
    }
}
