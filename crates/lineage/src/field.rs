//! The number-type abstraction for probability computation.
//!
//! Every algorithm in this crate is an arithmetic circuit over `(+, ·, 1−x)`
//! applied to tuple probabilities. [`ProbValue`] captures exactly the
//! operations those circuits need, so the same evaluator runs on fast `f64`
//! and on exact [`numeric::QRat`] rationals — the number type the paper's
//! problem statement is actually about (complexity is measured in the
//! bit-size of the rational probabilities `p(t)`).

use numeric::QRat;
use std::fmt::Debug;

/// A probability value: the operations used by the paper's recurrences and
/// by weighted model counting. Implementations must satisfy the usual
/// semifield laws with `complement(x) = 1 − x`.
pub trait ProbValue: Clone + PartialEq + Debug {
    fn zero() -> Self;
    fn one() -> Self;
    fn add(&self, other: &Self) -> Self;
    fn mul(&self, other: &Self) -> Self;
    /// `1 − self`.
    fn complement(&self) -> Self;
    fn is_zero(&self) -> bool;
    fn is_one(&self) -> bool;
    /// Best-effort float view, for diagnostics and cross-checks.
    fn to_f64(&self) -> f64;
}

impl ProbValue for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn complement(&self) -> Self {
        1.0 - self
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn is_one(&self) -> bool {
        *self == 1.0
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

impl ProbValue for QRat {
    fn zero() -> Self {
        QRat::zero()
    }
    fn one() -> Self {
        QRat::one()
    }
    fn add(&self, other: &Self) -> Self {
        self.add_ref(other)
    }
    fn mul(&self, other: &Self) -> Self {
        self.mul_ref(other)
    }
    fn complement(&self) -> Self {
        QRat::complement(self)
    }
    fn is_zero(&self) -> bool {
        QRat::is_zero(self)
    }
    fn is_one(&self) -> bool {
        QRat::is_one(self)
    }
    fn to_f64(&self) -> f64 {
        QRat::to_f64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws<P: ProbValue>(half: P, third: P) {
        assert!(P::zero().is_zero());
        assert!(P::one().is_one());
        assert_eq!(half.add(&P::zero()), half);
        assert_eq!(half.mul(&P::one()), half);
        assert_eq!(half.complement().complement(), half);
        let s = half.add(&third);
        assert!((s.to_f64() - (0.5 + 1.0 / 3.0)).abs() < 1e-9);
        let m = half.mul(&third);
        assert!((m.to_f64() - 0.5 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn f64_laws() {
        laws(0.5f64, 1.0 / 3.0);
    }

    #[test]
    fn qrat_laws() {
        laws(QRat::ratio(1, 2), QRat::ratio(1, 3));
    }
}
