//! Exact DNF probability by decomposition + Shannon expansion.
//!
//! The evaluator repeatedly:
//! 1. simplifies (absorption, constant detection),
//! 2. splits the clause set into *independent components* (clauses sharing
//!    no event variable are independent, so
//!    `P(D1 ∨ D2) = 1 − (1 − P(D1))(1 − P(D2))`),
//! 3. otherwise picks the most frequent event variable and applies Shannon
//!    expansion `P(D) = p·P(D|v) + (1−p)·P(D|¬v)`.
//!
//! Sub-results are memoized on the serialized clause set. This is a small
//! knowledge-compilation engine (the traces are decision-DNNFs); it is the
//! exact oracle used throughout the workspace and — deliberately — has
//! exponential worst-case behaviour on the lineages of #P-hard queries,
//! which experiment E7 measures.
//!
//! The engine is generic over [`ProbValue`], so it runs both on `f64` and on
//! exact rationals ([`numeric::QRat`]); [`model_count_exact`] uses the
//! latter to count satisfying assignments without any precision ceiling.

use crate::dnf::{Clause, Dnf};
use crate::field::ProbValue;
use numeric::{BigUint, QRat, Sign};
use std::collections::HashMap;

/// Counters describing the work done by one exact evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExactStats {
    /// Shannon expansions performed (decision nodes).
    pub decisions: u64,
    /// Independent-component splits.
    pub decompositions: u64,
    /// Memoization hits.
    pub cache_hits: u64,
}

/// Exact probability of `dnf` under independent event probabilities
/// `probs[v]`.
pub fn exact_probability(dnf: &Dnf, probs: &[f64]) -> f64 {
    exact_probability_with_stats(dnf, probs).0
}

/// As [`exact_probability`], also returning work counters.
pub fn exact_probability_with_stats(dnf: &Dnf, probs: &[f64]) -> (f64, ExactStats) {
    exact_probability_generic(dnf, probs)
}

/// The generic engine: exact probability over any [`ProbValue`] number type.
pub fn exact_probability_generic<P: ProbValue>(dnf: &Dnf, probs: &[P]) -> (P, ExactStats) {
    let mut ev = Evaluator {
        probs,
        memo: HashMap::new(),
        stats: ExactStats::default(),
    };
    let mut d = dnf.clone();
    d.absorb();
    let p = ev.eval(&d);
    (p, ev.stats)
}

/// Number of satisfying assignments of `dnf` over `num_vars` variables.
/// Computed as `2^num_vars · P(dnf)` with all probabilities `1/2`; exact as
/// long as the count fits in the 53-bit mantissa, which the callers
/// (hardness-reduction tests) guarantee. For larger instances use
/// [`model_count_exact`].
pub fn model_count(dnf: &Dnf, num_vars: usize) -> u64 {
    assert!(num_vars < 53, "model_count supports < 53 variables");
    let probs = vec![0.5; num_vars.max(dnf.num_vars())];
    let p = exact_probability(&dnf.clone(), &probs);
    (p * (1u64 << num_vars) as f64).round() as u64
}

/// Exact model count over `num_vars` variables with no precision ceiling:
/// evaluates `P(dnf)` in rational arithmetic at `p = 1/2` everywhere and
/// returns `2^num_vars · P(dnf)` as a big integer. This is the "counting
/// the number of substructures (when all probabilities are 1/2)"
/// specialization from the paper's conclusions.
///
/// # Panics
/// If `num_vars` is smaller than the variables used by `dnf`.
pub fn model_count_exact(dnf: &Dnf, num_vars: usize) -> BigUint {
    assert!(
        num_vars >= dnf.num_vars(),
        "num_vars {num_vars} < variables used by the DNF ({})",
        dnf.num_vars()
    );
    let probs = vec![QRat::ratio(1, 2); num_vars.max(1)];
    let (p, _) = exact_probability_generic(dnf, &probs);
    debug_assert!(p.sign() != Sign::Negative);
    // p = k / 2^m with m ≤ num_vars, so p · 2^num_vars is integral.
    let scaled = p.mul_ref(&QRat::from_parts(
        numeric::BigInt::from_biguint(Sign::Positive, BigUint::one().shl_bits(num_vars as u64)),
        BigUint::one(),
    ));
    assert!(
        scaled.denominator().is_one(),
        "model count must be integral, got {scaled}"
    );
    scaled.numerator().magnitude().clone()
}

struct Evaluator<'a, P: ProbValue> {
    probs: &'a [P],
    memo: HashMap<Vec<Clause>, P>,
    stats: ExactStats,
}

impl<P: ProbValue> Evaluator<'_, P> {
    fn eval(&mut self, dnf: &Dnf) -> P {
        if dnf.is_false() {
            return P::zero();
        }
        if dnf.is_true() {
            return P::one();
        }
        // Single clause: product of literal probabilities.
        if dnf.clauses.len() == 1 {
            return self.clause_prob(&dnf.clauses[0]);
        }
        let mut key: Vec<Clause> = dnf.clauses.clone();
        key.sort();
        if let Some(p) = self.memo.get(&key) {
            self.stats.cache_hits += 1;
            return p.clone();
        }

        let p = self.eval_uncached(dnf);
        self.memo.insert(key, p.clone());
        p
    }

    fn clause_prob(&self, c: &Clause) -> P {
        let mut p = P::one();
        for l in c.lits() {
            let pv = &self.probs[l.var as usize];
            p = p.mul(&if l.positive {
                pv.clone()
            } else {
                pv.complement()
            });
        }
        p
    }

    fn eval_uncached(&mut self, dnf: &Dnf) -> P {
        // Independent-component split.
        let comps = components(dnf);
        if comps.len() > 1 {
            self.stats.decompositions += 1;
            let mut none = P::one();
            for c in comps {
                none = none.mul(&self.eval(&c).complement());
            }
            return none.complement();
        }

        // Shannon expansion on the most frequent variable.
        self.stats.decisions += 1;
        let v = most_frequent_var(dnf);
        let p = self.probs[v as usize].clone();
        let mut pos = dnf.condition(v, true);
        pos.absorb();
        let mut neg = dnf.condition(v, false);
        neg.absorb();
        let t = p.mul(&self.eval(&pos));
        let f = p.complement().mul(&self.eval(&neg));
        t.add(&f)
    }
}

fn most_frequent_var(dnf: &Dnf) -> u32 {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for c in &dnf.clauses {
        for l in c.lits() {
            *counts.entry(l.var).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(v, n)| (n, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
        .expect("non-constant DNF has variables")
}

/// Partition clauses into groups sharing no variables (union–find).
fn components(dnf: &Dnf) -> Vec<Dnf> {
    let n = dnf.clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: HashMap<u32, usize> = HashMap::new();
    for (i, c) in dnf.clauses.iter().enumerate() {
        for l in c.lits() {
            match owner.get(&l.var) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    parent[a] = b;
                }
                None => {
                    owner.insert(l.var, i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Dnf> = HashMap::new();
    for (i, c) in dnf.clauses.iter().enumerate() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().clauses.push(c.clone());
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Lit;

    fn brute_force(dnf: &Dnf, probs: &[f64]) -> f64 {
        let n = probs.len();
        let mut total = 0.0;
        for mask in 0u64..(1 << n) {
            let world: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            if dnf.satisfied_by(&world) {
                let mut p = 1.0;
                for (i, &b) in world.iter().enumerate() {
                    p *= if b { probs[i] } else { 1.0 - probs[i] };
                }
                total += p;
            }
        }
        total
    }

    #[test]
    fn constants() {
        assert_eq!(exact_probability(&Dnf::new(), &[]), 0.0);
        assert_eq!(exact_probability(&Dnf::truth(), &[]), 1.0);
    }

    #[test]
    fn single_positive_event() {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0)]);
        assert!((exact_probability(&d, &[0.3]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn independent_union() {
        // e0 ∨ e1 with independent events: 1 - (1-p0)(1-p1).
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0)]);
        d.add_clause(vec![Lit::pos(1)]);
        let p = exact_probability(&d, &[0.3, 0.4]);
        assert!((p - (1.0 - 0.7 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn shared_variable_requires_shannon() {
        // (e0 ∧ e1) ∨ (e0 ∧ e2)
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        d.add_clause(vec![Lit::pos(0), Lit::pos(2)]);
        let probs = [0.5, 0.5, 0.5];
        let p = exact_probability(&d, &probs);
        assert!((p - brute_force(&d, &probs)).abs() < 1e-12);
        assert!((p - 0.5 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn negative_literals() {
        // (¬e0) ∨ (e0 ∧ e1)
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::neg(0)]);
        d.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let probs = [0.6, 0.25];
        let p = exact_probability(&d, &probs);
        assert!((p - brute_force(&d, &probs)).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_formulas() {
        // Deterministic pseudo-random DNFs over 8 vars.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let n = 8usize;
            let mut d = Dnf::new();
            let clauses = 1 + (next() % 6) as usize;
            for _ in 0..clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = (next() % n as u64) as u32;
                        if next() % 2 == 0 {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                d.add_clause(lits);
            }
            let probs: Vec<f64> = (0..n)
                .map(|i| (i as f64 + 1.0) / (n as f64 + 1.0))
                .collect();
            let p = exact_probability(&d, &probs);
            let bf = brute_force(&d, &probs);
            assert!((p - bf).abs() < 1e-10, "dnf={d} p={p} bf={bf}");
        }
    }

    #[test]
    fn model_count_small() {
        // x0 ∨ x1 over 2 vars: 3 models.
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0)]);
        d.add_clause(vec![Lit::pos(1)]);
        assert_eq!(model_count(&d, 2), 3);
        // Over 3 vars: 6 models.
        assert_eq!(model_count(&d, 3), 6);
    }

    #[test]
    fn stats_are_reported() {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        d.add_clause(vec![Lit::pos(0), Lit::pos(2)]);
        d.add_clause(vec![Lit::pos(3)]);
        let (_, stats) = exact_probability_with_stats(&d, &[0.5; 4]);
        assert!(stats.decompositions >= 1);
        assert!(stats.decisions >= 1);
    }

    #[test]
    fn rational_engine_agrees_with_f64() {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        d.add_clause(vec![Lit::pos(0), Lit::pos(2)]);
        d.add_clause(vec![Lit::neg(1), Lit::pos(3)]);
        let fprobs = [0.5, 0.25, 0.75, 0.125];
        let qprobs: Vec<QRat> = [(1, 2), (1, 4), (3, 4), (1, 8)]
            .iter()
            .map(|&(n, den)| QRat::ratio(n, den))
            .collect();
        let pf = exact_probability(&d, &fprobs);
        let (pq, _) = exact_probability_generic(&d, &qprobs);
        assert!((pf - pq.to_f64()).abs() < 1e-12, "f64 {pf} vs exact {pq}");
    }

    #[test]
    fn model_count_exact_matches_f64_count() {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0)]);
        d.add_clause(vec![Lit::pos(1), Lit::pos(2)]);
        for n in [3usize, 5, 10] {
            assert_eq!(
                model_count_exact(&d, n).to_u64().unwrap(),
                model_count(&d, n)
            );
        }
    }

    #[test]
    fn model_count_exact_beyond_f64_mantissa() {
        // e0 over 80 variables: 2^79 models — far past the 53-bit ceiling.
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0)]);
        let c = model_count_exact(&d, 80);
        assert_eq!(c, BigUint::one().shl_bits(79));
    }

    #[test]
    #[should_panic(expected = "num_vars")]
    fn model_count_exact_rejects_undersized_domain() {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(5)]);
        let _ = model_count_exact(&d, 3);
    }
}
