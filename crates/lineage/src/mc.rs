//! Monte-Carlo estimation of DNF probability.
//!
//! Two estimators:
//!
//! * [`naive_mc`] — sample worlds from the product distribution and count
//!   how often the DNF is true. Unbiased but needs `Ω(1/P)` samples when the
//!   answer is small.
//! * [`karp_luby`] — the Karp–Luby importance sampler, an FPRAS for DNF
//!   probability: sample a clause proportionally to its weight, complete it
//!   to a world, and count the sample iff the chosen clause is the *first*
//!   satisfied clause. Relative error is controlled independently of how
//!   small the answer is.
//!
//! This pair is the paper's practical foil: MystiQ (§1) falls back to
//! "a Monte Carlo simulation algorithm" for unsafe queries, and the observed
//! 1–2 orders of magnitude gap versus safe plans is experiment E4.

use crate::dnf::Dnf;
use rand::Rng;

/// A Monte-Carlo estimate with its standard error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McEstimate {
    pub estimate: f64,
    /// Standard error of the mean (σ/√n).
    pub std_error: f64,
    pub samples: u64,
}

impl McEstimate {
    /// Half-width of the 95% normal confidence interval.
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_error
    }
}

/// Naive Monte Carlo: sample independent worlds, average DNF truth.
pub fn naive_mc<R: Rng>(dnf: &Dnf, probs: &[f64], samples: u64, rng: &mut R) -> McEstimate {
    if dnf.is_false() {
        return McEstimate {
            estimate: 0.0,
            std_error: 0.0,
            samples,
        };
    }
    let n = probs.len().max(dnf.num_vars());
    let mut world = vec![false; n];
    let mut hits = 0u64;
    for _ in 0..samples {
        for (i, w) in world.iter_mut().enumerate() {
            let p = probs.get(i).copied().unwrap_or(0.0);
            *w = rng.gen::<f64>() < p;
        }
        if dnf.satisfied_by(&world) {
            hits += 1;
        }
    }
    let est = hits as f64 / samples as f64;
    McEstimate {
        estimate: est,
        std_error: (est * (1.0 - est) / samples as f64).sqrt(),
        samples,
    }
}

/// Karp–Luby importance sampling for `P(dnf)`.
///
/// Let `w_i = P(clause_i)` and `W = Σ w_i`. Draw clause `i ∝ w_i`, draw the
/// remaining events independently, and score `W · 1[i = min{ j : world ⊨
/// clause_j }]`. The score is an unbiased estimator of `P(⋁ clauses)` with
/// variance at most `W²/4 ≤ (m·P)²/4`, giving an FPRAS.
pub fn karp_luby<R: Rng>(dnf: &Dnf, probs: &[f64], samples: u64, rng: &mut R) -> McEstimate {
    if dnf.is_false() {
        return McEstimate {
            estimate: 0.0,
            std_error: 0.0,
            samples,
        };
    }
    if dnf.is_true() {
        return McEstimate {
            estimate: 1.0,
            std_error: 0.0,
            samples,
        };
    }
    let n = probs.len().max(dnf.num_vars());
    let weights: Vec<f64> = dnf.clauses.iter().map(|c| c.prob(probs)).collect();
    let total_w: f64 = weights.iter().sum();
    if total_w == 0.0 {
        return McEstimate {
            estimate: 0.0,
            std_error: 0.0,
            samples,
        };
    }
    // Cumulative distribution for clause sampling.
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_w;
        cum.push(acc);
    }

    let mut world = vec![false; n];
    let mut hits = 0u64;
    for _ in 0..samples {
        // Pick a clause proportionally to its weight.
        let u: f64 = rng.gen();
        let idx = match cum.iter().position(|&c| u <= c) {
            Some(i) => i,
            None => cum.len() - 1,
        };
        // Sample a world conditioned on clause idx being true.
        for (i, w) in world.iter_mut().enumerate() {
            let p = probs.get(i).copied().unwrap_or(0.0);
            *w = rng.gen::<f64>() < p;
        }
        for l in dnf.clauses[idx].lits() {
            world[l.var as usize] = l.positive;
        }
        // Count iff idx is the first satisfied clause.
        let first = dnf
            .clauses
            .iter()
            .position(|c| c.satisfied_by(&world))
            .expect("sampled clause is satisfied");
        if first == idx {
            hits += 1;
        }
    }
    let frac = hits as f64 / samples as f64;
    let est = total_w * frac;
    let se = total_w * (frac * (1.0 - frac) / samples as f64).sqrt();
    McEstimate {
        estimate: est.min(1.0),
        std_error: se,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Lit;
    use crate::exact::exact_probability;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_dnf(k: usize) -> (Dnf, Vec<f64>) {
        // (e0 ∧ e1) ∨ (e1 ∧ e2) ∨ … — overlapping clauses.
        let mut d = Dnf::new();
        for i in 0..k {
            d.add_clause(vec![Lit::pos(i as u32), Lit::pos(i as u32 + 1)]);
        }
        let probs = (0..=k).map(|i| 0.2 + 0.05 * (i % 7) as f64).collect();
        (d, probs)
    }

    #[test]
    fn naive_mc_converges() {
        let (d, probs) = chain_dnf(6);
        let exact = exact_probability(&d, &probs);
        let mut rng = StdRng::seed_from_u64(7);
        let est = naive_mc(&d, &probs, 200_000, &mut rng);
        assert!(
            (est.estimate - exact).abs() < 5.0 * est.std_error.max(1e-3),
            "exact={exact} est={est:?}"
        );
    }

    #[test]
    fn karp_luby_converges() {
        let (d, probs) = chain_dnf(6);
        let exact = exact_probability(&d, &probs);
        let mut rng = StdRng::seed_from_u64(11);
        let est = karp_luby(&d, &probs, 100_000, &mut rng);
        assert!(
            (est.estimate - exact).abs() < 5.0 * est.std_error.max(1e-3),
            "exact={exact} est={est:?}"
        );
    }

    #[test]
    fn karp_luby_handles_tiny_probabilities() {
        // P ≈ 1e-6: naive MC with few samples sees nothing, Karp–Luby still
        // achieves small relative error.
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let probs = [1e-3, 1e-3];
        let exact = 1e-6;
        let mut rng = StdRng::seed_from_u64(3);
        let est = karp_luby(&d, &probs, 10_000, &mut rng);
        assert!(
            (est.estimate - exact).abs() / exact < 0.05,
            "est={est:?} exact={exact}"
        );
    }

    #[test]
    fn constants_short_circuit() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(karp_luby(&Dnf::new(), &[], 10, &mut rng).estimate, 0.0);
        assert_eq!(karp_luby(&Dnf::truth(), &[], 10, &mut rng).estimate, 1.0);
        assert_eq!(naive_mc(&Dnf::new(), &[], 10, &mut rng).estimate, 0.0);
    }

    #[test]
    fn estimates_report_sample_count_and_ci() {
        let (d, probs) = chain_dnf(3);
        let mut rng = StdRng::seed_from_u64(5);
        let est = naive_mc(&d, &probs, 1000, &mut rng);
        assert_eq!(est.samples, 1000);
        assert!(est.ci95() >= est.std_error);
    }
}
