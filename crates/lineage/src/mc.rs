//! Monte-Carlo estimation of DNF probability.
//!
//! Two estimators:
//!
//! * [`naive_mc`] — sample worlds from the product distribution and count
//!   how often the DNF is true. Unbiased but needs `Ω(1/P)` samples when the
//!   answer is small.
//! * [`karp_luby`] — the Karp–Luby importance sampler, an FPRAS for DNF
//!   probability: sample a clause proportionally to its weight, complete it
//!   to a world, and count the sample iff the chosen clause is the *first*
//!   satisfied clause. Relative error is controlled independently of how
//!   small the answer is.
//!
//! This pair is the paper's practical foil: MystiQ (§1) falls back to
//! "a Monte Carlo simulation algorithm" for unsafe queries, and the observed
//! 1–2 orders of magnitude gap versus safe plans is experiment E4.
//!
//! Both estimators also come in parallel form ([`naive_mc_par`],
//! [`karp_luby_par`]): the sample budget is fanned out over a scoped-thread
//! worker pool, each worker drawing from its own RNG stream (seed-split via
//! [`rand::rngs::StdRng::split`], so a fixed seed and thread count is fully
//! reproducible), and the per-worker hit counts pool into one estimate with
//! a pooled standard error.

use crate::dnf::Dnf;
use exec_parallel::{ExecStats, Pool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Monte-Carlo estimate with its standard error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McEstimate {
    pub estimate: f64,
    /// Standard error of the mean (σ/√n).
    pub std_error: f64,
    pub samples: u64,
}

/// Reusable sampling scratch: the world bitmap the estimators fill on
/// every draw. One scratch per (worker) thread, reused across samples
/// *and* across calls — per-candidate ranking loops used to pay one heap
/// allocation per estimator invocation; carrying a scratch across the
/// loop drops that to zero. Purely an allocation cache: it never affects
/// which random numbers are drawn, so estimates stay byte-identical per
/// `(seed, threads)` with or without reuse.
#[derive(Default)]
pub struct McScratch {
    world: Vec<bool>,
}

impl McScratch {
    pub fn new() -> Self {
        McScratch::default()
    }

    /// A cleared world bitmap of (at least) `n` events.
    pub fn world(&mut self, n: usize) -> &mut Vec<bool> {
        self.world.clear();
        self.world.resize(n, false);
        &mut self.world
    }
}

impl McEstimate {
    /// Half-width of the 95% normal confidence interval.
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_error
    }
}

/// Naive Monte Carlo: sample independent worlds, average DNF truth.
pub fn naive_mc<R: Rng>(dnf: &Dnf, probs: &[f64], samples: u64, rng: &mut R) -> McEstimate {
    naive_mc_with_scratch(dnf, probs, samples, rng, &mut McScratch::new())
}

/// [`naive_mc`] reusing a caller-held [`McScratch`] — for hot loops that
/// estimate many lineages back to back.
pub fn naive_mc_with_scratch<R: Rng>(
    dnf: &Dnf,
    probs: &[f64],
    samples: u64,
    rng: &mut R,
    scratch: &mut McScratch,
) -> McEstimate {
    if dnf.is_false() {
        return McEstimate {
            estimate: 0.0,
            std_error: 0.0,
            samples,
        };
    }
    let hits = naive_hits(dnf, probs, samples, rng, scratch);
    naive_estimate(hits, samples)
}

/// [`naive_mc`] with the sample budget fanned out over `threads` workers,
/// each drawing from its own seed-split RNG stream. Deterministic for a
/// fixed `(seed, threads)`; the per-worker hit counts pool into one
/// estimate. Also reports per-thread busy-time counters.
pub fn naive_mc_par(
    dnf: &Dnf,
    probs: &[f64],
    samples: u64,
    threads: usize,
    seed: u64,
) -> (McEstimate, ExecStats) {
    if dnf.is_false() {
        return (
            McEstimate {
                estimate: 0.0,
                std_error: 0.0,
                samples,
            },
            ExecStats::default(),
        );
    }
    let (hits, stats) = pooled_hits(samples, threads, seed, |budget, rng| {
        // One scratch per worker, reused across that worker's samples.
        naive_hits(dnf, probs, budget, rng, &mut McScratch::new())
    });
    (naive_estimate(hits, samples), stats)
}

/// The naive sampling kernel: draw `samples` worlds, count satisfying
/// ones. The world bitmap comes from `scratch` and every position is
/// overwritten per draw, so reuse across samples (and calls) is free.
fn naive_hits<R: Rng>(
    dnf: &Dnf,
    probs: &[f64],
    samples: u64,
    rng: &mut R,
    scratch: &mut McScratch,
) -> u64 {
    let n = probs.len().max(dnf.num_vars());
    let world = scratch.world(n);
    let mut hits = 0u64;
    for _ in 0..samples {
        for (i, w) in world.iter_mut().enumerate() {
            let p = probs.get(i).copied().unwrap_or(0.0);
            *w = rng.gen::<f64>() < p;
        }
        if dnf.satisfied_by(world) {
            hits += 1;
        }
    }
    hits
}

fn naive_estimate(hits: u64, samples: u64) -> McEstimate {
    let est = hits as f64 / samples as f64;
    McEstimate {
        estimate: est,
        std_error: (est * (1.0 - est) / samples as f64).sqrt(),
        samples,
    }
}

/// Split `samples` over `threads` seed-split RNG streams, run `kernel` on
/// each worker's share, and pool the hit counts. The split is by worker
/// index (worker `w` gets `samples/threads` plus one of the remainder), so
/// the schedule cannot leak into the totals.
fn pooled_hits(
    samples: u64,
    threads: usize,
    seed: u64,
    kernel: impl Fn(u64, &mut StdRng) -> u64 + Sync,
) -> (u64, ExecStats) {
    let threads = threads.max(1);
    let streams = StdRng::seed_from_u64(seed).split(threads);
    let base = samples / threads as u64;
    let rem = samples % threads as u64;
    let pool = Pool::new(threads);
    let hits: u64 = pool
        .map_partitions(threads, |w| {
            let _span = telemetry::span_with(|| format!("mc-round {w}"));
            let budget = base + u64::from((w as u64) < rem);
            let mut rng = streams[w].clone();
            kernel(budget, &mut rng)
        })
        .into_iter()
        .sum();
    (hits, pool.stats())
}

/// Karp–Luby importance sampling for `P(dnf)`.
///
/// Let `w_i = P(clause_i)` and `W = Σ w_i`. Draw clause `i ∝ w_i`, draw the
/// remaining events independently, and score `W · 1[i = min{ j : world ⊨
/// clause_j }]`. The score is an unbiased estimator of `P(⋁ clauses)` with
/// variance at most `W²/4 ≤ (m·P)²/4`, giving an FPRAS.
pub fn karp_luby<R: Rng>(dnf: &Dnf, probs: &[f64], samples: u64, rng: &mut R) -> McEstimate {
    karp_luby_with_scratch(dnf, probs, samples, rng, &mut McScratch::new())
}

/// [`karp_luby`] reusing a caller-held [`McScratch`] — for hot loops that
/// estimate many lineages back to back.
pub fn karp_luby_with_scratch<R: Rng>(
    dnf: &Dnf,
    probs: &[f64],
    samples: u64,
    rng: &mut R,
    scratch: &mut McScratch,
) -> McEstimate {
    match karp_luby_prepare(dnf, probs) {
        KlPrep::Constant(p) => McEstimate {
            estimate: p,
            std_error: 0.0,
            samples,
        },
        KlPrep::Ready { cum, n, total_w } => {
            let hits = karp_luby_hits(dnf, probs, &cum, n, samples, rng, scratch);
            karp_luby_estimate(hits, samples, total_w)
        }
    }
}

/// [`karp_luby`] with the sample budget fanned out over `threads` workers
/// on seed-split RNG streams; per-worker hit counts pool into one unbiased
/// estimate with a pooled standard error. Deterministic for a fixed
/// `(seed, threads)`.
pub fn karp_luby_par(
    dnf: &Dnf,
    probs: &[f64],
    samples: u64,
    threads: usize,
    seed: u64,
) -> (McEstimate, ExecStats) {
    match karp_luby_prepare(dnf, probs) {
        KlPrep::Constant(p) => (
            McEstimate {
                estimate: p,
                std_error: 0.0,
                samples,
            },
            ExecStats::default(),
        ),
        KlPrep::Ready { cum, n, total_w } => {
            let (hits, stats) = pooled_hits(samples, threads, seed, |budget, rng| {
                // One scratch per worker, reused across its samples.
                karp_luby_hits(dnf, probs, &cum, n, budget, rng, &mut McScratch::new())
            });
            (karp_luby_estimate(hits, samples, total_w), stats)
        }
    }
}

/// What the serial and parallel Karp–Luby entry points share: degenerate
/// DNFs short-circuit to a constant, everything else gets the clause CDF.
enum KlPrep {
    Constant(f64),
    Ready {
        cum: Vec<f64>,
        n: usize,
        total_w: f64,
    },
}

fn karp_luby_prepare(dnf: &Dnf, probs: &[f64]) -> KlPrep {
    if dnf.is_false() {
        return KlPrep::Constant(0.0);
    }
    if dnf.is_true() {
        return KlPrep::Constant(1.0);
    }
    let n = probs.len().max(dnf.num_vars());
    let weights: Vec<f64> = dnf.clauses.iter().map(|c| c.prob(probs)).collect();
    let total_w: f64 = weights.iter().sum();
    if total_w == 0.0 {
        return KlPrep::Constant(0.0);
    }
    // Cumulative distribution for clause sampling.
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_w;
        cum.push(acc);
    }
    KlPrep::Ready { cum, n, total_w }
}

/// The Karp–Luby sampling kernel: `samples` draws, counting those where
/// the sampled clause is the first satisfied one. The world bitmap comes
/// from `scratch`; every position is overwritten per draw.
#[allow(clippy::too_many_arguments)]
fn karp_luby_hits<R: Rng>(
    dnf: &Dnf,
    probs: &[f64],
    cum: &[f64],
    n: usize,
    samples: u64,
    rng: &mut R,
    scratch: &mut McScratch,
) -> u64 {
    let world = scratch.world(n);
    let mut hits = 0u64;
    for _ in 0..samples {
        // Pick a clause proportionally to its weight.
        let u: f64 = rng.gen();
        let idx = match cum.iter().position(|&c| u <= c) {
            Some(i) => i,
            None => cum.len() - 1,
        };
        // Sample a world conditioned on clause idx being true.
        for (i, w) in world.iter_mut().enumerate() {
            let p = probs.get(i).copied().unwrap_or(0.0);
            *w = rng.gen::<f64>() < p;
        }
        for l in dnf.clauses[idx].lits() {
            world[l.var as usize] = l.positive;
        }
        // Count iff idx is the first satisfied clause.
        let first = dnf
            .clauses
            .iter()
            .position(|c| c.satisfied_by(world))
            .expect("sampled clause is satisfied");
        if first == idx {
            hits += 1;
        }
    }
    hits
}

fn karp_luby_estimate(hits: u64, samples: u64, total_w: f64) -> McEstimate {
    let frac = hits as f64 / samples as f64;
    let est = total_w * frac;
    let se = total_w * (frac * (1.0 - frac) / samples as f64).sqrt();
    McEstimate {
        estimate: est.min(1.0),
        std_error: se,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Lit;
    use crate::exact::exact_probability;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_dnf(k: usize) -> (Dnf, Vec<f64>) {
        // (e0 ∧ e1) ∨ (e1 ∧ e2) ∨ … — overlapping clauses.
        let mut d = Dnf::new();
        for i in 0..k {
            d.add_clause(vec![Lit::pos(i as u32), Lit::pos(i as u32 + 1)]);
        }
        let probs = (0..=k).map(|i| 0.2 + 0.05 * (i % 7) as f64).collect();
        (d, probs)
    }

    #[test]
    fn naive_mc_converges() {
        let (d, probs) = chain_dnf(6);
        let exact = exact_probability(&d, &probs);
        let mut rng = StdRng::seed_from_u64(7);
        let est = naive_mc(&d, &probs, 200_000, &mut rng);
        assert!(
            (est.estimate - exact).abs() < 5.0 * est.std_error.max(1e-3),
            "exact={exact} est={est:?}"
        );
    }

    #[test]
    fn karp_luby_converges() {
        let (d, probs) = chain_dnf(6);
        let exact = exact_probability(&d, &probs);
        let mut rng = StdRng::seed_from_u64(11);
        let est = karp_luby(&d, &probs, 100_000, &mut rng);
        assert!(
            (est.estimate - exact).abs() < 5.0 * est.std_error.max(1e-3),
            "exact={exact} est={est:?}"
        );
    }

    #[test]
    fn karp_luby_handles_tiny_probabilities() {
        // P ≈ 1e-6: naive MC with few samples sees nothing, Karp–Luby still
        // achieves small relative error.
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let probs = [1e-3, 1e-3];
        let exact = 1e-6;
        let mut rng = StdRng::seed_from_u64(3);
        let est = karp_luby(&d, &probs, 10_000, &mut rng);
        assert!(
            (est.estimate - exact).abs() / exact < 0.05,
            "est={est:?} exact={exact}"
        );
    }

    #[test]
    fn constants_short_circuit() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(karp_luby(&Dnf::new(), &[], 10, &mut rng).estimate, 0.0);
        assert_eq!(karp_luby(&Dnf::truth(), &[], 10, &mut rng).estimate, 1.0);
        assert_eq!(naive_mc(&Dnf::new(), &[], 10, &mut rng).estimate, 0.0);
    }

    #[test]
    fn parallel_estimators_are_deterministic_per_seed_and_thread_count() {
        let (d, probs) = chain_dnf(6);
        for threads in [1, 2, 4, 8] {
            let (a, _) = karp_luby_par(&d, &probs, 20_000, threads, 99);
            let (b, _) = karp_luby_par(&d, &probs, 20_000, threads, 99);
            assert_eq!(a, b, "karp_luby_par threads={threads}");
            let (a, _) = naive_mc_par(&d, &probs, 20_000, threads, 99);
            let (b, _) = naive_mc_par(&d, &probs, 20_000, threads, 99);
            assert_eq!(a, b, "naive_mc_par threads={threads}");
        }
    }

    #[test]
    fn parallel_estimators_converge() {
        let (d, probs) = chain_dnf(6);
        let exact = exact_probability(&d, &probs);
        for threads in [2, 4] {
            let (kl, stats) = karp_luby_par(&d, &probs, 100_000, threads, 5);
            assert!(
                (kl.estimate - exact).abs() < 5.0 * kl.std_error.max(1e-3),
                "threads={threads}: exact={exact} est={kl:?}"
            );
            assert_eq!(stats.threads(), threads);
            assert_eq!(stats.total_morsels(), threads as u64);
            let (nv, _) = naive_mc_par(&d, &probs, 100_000, threads, 5);
            assert!(
                (nv.estimate - exact).abs() < 5.0 * nv.std_error.max(1e-3),
                "threads={threads}: exact={exact} est={nv:?}"
            );
        }
    }

    #[test]
    fn parallel_constants_short_circuit() {
        let (kl, _) = karp_luby_par(&Dnf::new(), &[], 10, 4, 0);
        assert_eq!(kl.estimate, 0.0);
        let (kl, _) = karp_luby_par(&Dnf::truth(), &[], 10, 4, 0);
        assert_eq!(kl.estimate, 1.0);
        let (nv, _) = naive_mc_par(&Dnf::new(), &[], 10, 4, 0);
        assert_eq!(nv.estimate, 0.0);
    }

    #[test]
    fn scratch_reuse_is_byte_identical_and_deterministic() {
        let (d, probs) = chain_dnf(6);
        // Fresh-scratch and reused-scratch runs draw the same RNG stream
        // and must produce the same bits — including when the scratch was
        // dirtied by a *different* (larger) DNF first.
        let (d_big, probs_big) = chain_dnf(9);
        let mut scratch = McScratch::new();
        let mut rng = StdRng::seed_from_u64(123);
        let _ = karp_luby_with_scratch(&d_big, &probs_big, 500, &mut rng, &mut scratch);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let fresh = karp_luby(&d, &probs, 5_000, &mut rng_a);
        let reused = karp_luby_with_scratch(&d, &probs, 5_000, &mut rng_b, &mut scratch);
        assert_eq!(fresh, reused);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let fresh = naive_mc(&d, &probs, 5_000, &mut rng_a);
        let reused = naive_mc_with_scratch(&d, &probs, 5_000, &mut rng_b, &mut scratch);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn estimates_report_sample_count_and_ci() {
        let (d, probs) = chain_dnf(3);
        let mut rng = StdRng::seed_from_u64(5);
        let est = naive_mc(&d, &probs, 1000, &mut rng);
        assert_eq!(est.samples, 1000);
        assert!(est.ci95() >= est.std_error);
    }
}
