//! # lineage — weighted model counting over event DNFs
//!
//! Evaluating a conjunctive query `q` on a tuple-independent probabilistic
//! structure reduces to computing the probability of its *lineage*: a
//! monotone (or, with negated sub-goals, non-monotone) DNF over independent
//! Boolean tuple events — one clause per valuation of `q` into the set of
//! possible tuples. This crate is the model-counting substrate:
//!
//! * [`dnf`] — the DNF representation,
//! * [`exact`] — exact probability by knowledge-compilation-style
//!   evaluation (independent-component decomposition + Shannon expansion +
//!   memoization). Exponential in the worst case — the paper proves it must
//!   be, for #P-hard queries — but effective at laptop scale and the
//!   ground-truth oracle for every other evaluator in the workspace,
//! * [`mc`] — the Karp–Luby FPRAS for DNF probability and a naive
//!   Monte-Carlo sampler; these are the "MystiQ fallback" baselines the
//!   paper's introduction compares safe plans against,
//! * [`circuit`] — explicit decision-DNNF compilation: compile once,
//!   re-weight in linear time.

pub mod circuit;
pub mod dnf;
pub mod exact;
pub mod field;
pub mod mc;

pub use circuit::{compile, Circuit, Node};
pub use dnf::{Clause, Dnf, Lit};
pub use exact::{
    exact_probability, exact_probability_generic, model_count, model_count_exact, ExactStats,
};
pub use field::ProbValue;
pub use mc::{
    karp_luby, karp_luby_par, karp_luby_with_scratch, naive_mc, naive_mc_par,
    naive_mc_with_scratch, McEstimate, McScratch,
};
