//! Knowledge compilation to an explicit decision-DNNF circuit.
//!
//! [`crate::exact`] computes probabilities directly; this module makes the
//! compilation *artifact* explicit: a circuit with decomposable AND nodes
//! (children share no event variables) and deterministic decision-OR nodes
//! (Shannon expansion on one variable). Once compiled, the circuit supports
//! linear-time weighted model counting under *any* weight assignment —
//! evaluate once per probability vector instead of recompiling — plus size
//! accounting for the E7 blow-up experiment.

use crate::dnf::{Clause, Dnf};
use std::collections::HashMap;

/// A node of the compiled circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    True,
    False,
    /// A literal: event `var` with the given polarity.
    Lit {
        var: u32,
        positive: bool,
    },
    /// Decomposable conjunction — children over disjoint variable sets.
    And(Vec<NodeId>),
    /// Shannon decision on `var`: `(var ∧ hi) ∨ (¬var ∧ lo)`.
    Decision {
        var: u32,
        hi: NodeId,
        lo: NodeId,
    },
    /// Deterministic disjunction of independent components:
    /// `¬(¬c1 ∧ ¬c2 ∧ …)` — stored as an OR over variable-disjoint children.
    Or(Vec<NodeId>),
}

/// Index into [`Circuit::nodes`].
pub type NodeId = usize;

/// A compiled decision-DNNF.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    pub nodes: Vec<Node>,
    pub root: NodeId,
}

impl Circuit {
    /// Number of nodes (the compilation size measure).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Number of decision nodes.
    pub fn decisions(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Decision { .. }))
            .count()
    }

    /// Weighted model count: probability of the compiled formula under
    /// per-event marginals. Linear in circuit size.
    pub fn probability(&self, probs: &[f64]) -> f64 {
        let mut memo = vec![f64::NAN; self.nodes.len()];
        for id in 0..self.nodes.len() {
            memo[id] = match &self.nodes[id] {
                Node::True => 1.0,
                Node::False => 0.0,
                Node::Lit { var, positive } => {
                    let p = probs[*var as usize];
                    if *positive {
                        p
                    } else {
                        1.0 - p
                    }
                }
                Node::And(children) => children.iter().map(|&c| memo[c]).product(),
                Node::Decision { var, hi, lo } => {
                    let p = probs[*var as usize];
                    p * memo[*hi] + (1.0 - p) * memo[*lo]
                }
                Node::Or(children) => {
                    1.0 - children.iter().map(|&c| 1.0 - memo[c]).product::<f64>()
                }
            };
        }
        memo[self.root]
    }
}

/// Compile a DNF into a decision-DNNF (same strategy as the direct
/// evaluator: absorption, independent-component split, Shannon expansion on
/// the most frequent variable; sub-circuits memoized on the clause set).
pub fn compile(dnf: &Dnf) -> Circuit {
    let mut c = Compiler {
        circuit: Circuit::default(),
        memo: HashMap::new(),
    };
    let mut d = dnf.clone();
    d.absorb();
    let root = c.go(&d);
    c.circuit.root = root;
    c.circuit
}

struct Compiler {
    circuit: Circuit,
    memo: HashMap<Vec<Clause>, NodeId>,
}

impl Compiler {
    fn push(&mut self, n: Node) -> NodeId {
        self.circuit.nodes.push(n);
        self.circuit.nodes.len() - 1
    }

    fn go(&mut self, dnf: &Dnf) -> NodeId {
        if dnf.is_false() {
            return self.push(Node::False);
        }
        if dnf.is_true() {
            return self.push(Node::True);
        }
        let mut key: Vec<Clause> = dnf.clauses.clone();
        key.sort();
        if let Some(&id) = self.memo.get(&key) {
            return id;
        }
        let id = self.build(dnf);
        self.memo.insert(key, id);
        id
    }

    fn build(&mut self, dnf: &Dnf) -> NodeId {
        // Single clause: decomposable AND of literals.
        if dnf.clauses.len() == 1 {
            let lits: Vec<NodeId> = dnf.clauses[0]
                .lits()
                .iter()
                .map(|l| {
                    self.push(Node::Lit {
                        var: l.var,
                        positive: l.positive,
                    })
                })
                .collect();
            return if lits.len() == 1 {
                lits[0]
            } else {
                self.push(Node::And(lits))
            };
        }
        // Independent components → deterministic OR.
        let comps = components(dnf);
        if comps.len() > 1 {
            let children: Vec<NodeId> = comps.iter().map(|c| self.go(c)).collect();
            return self.push(Node::Or(children));
        }
        // Shannon decision.
        let v = most_frequent_var(dnf);
        let mut hi = dnf.condition(v, true);
        hi.absorb();
        let mut lo = dnf.condition(v, false);
        lo.absorb();
        let hi_id = self.go(&hi);
        let lo_id = self.go(&lo);
        self.push(Node::Decision {
            var: v,
            hi: hi_id,
            lo: lo_id,
        })
    }
}

fn most_frequent_var(dnf: &Dnf) -> u32 {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for c in &dnf.clauses {
        for l in c.lits() {
            *counts.entry(l.var).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(v, n)| (n, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
        .expect("non-constant DNF")
}

fn components(dnf: &Dnf) -> Vec<Dnf> {
    let n = dnf.clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: HashMap<u32, usize> = HashMap::new();
    for (i, c) in dnf.clauses.iter().enumerate() {
        for l in c.lits() {
            match owner.get(&l.var) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    parent[a] = b;
                }
                None => {
                    owner.insert(l.var, i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Dnf> = HashMap::new();
    for (i, c) in dnf.clauses.iter().enumerate() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().clauses.push(c.clone());
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Lit;
    use crate::exact::exact_probability;

    fn sample_dnf() -> Dnf {
        let mut d = Dnf::new();
        d.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        d.add_clause(vec![Lit::pos(0), Lit::pos(2)]);
        d.add_clause(vec![Lit::pos(3)]);
        d
    }

    #[test]
    fn compiled_probability_matches_direct_evaluation() {
        let d = sample_dnf();
        let circuit = compile(&d);
        for probs in [
            vec![0.5, 0.5, 0.5, 0.5],
            vec![0.1, 0.9, 0.3, 0.7],
            vec![0.99, 0.01, 0.5, 0.25],
        ] {
            let direct = exact_probability(&d, &probs);
            let via_circuit = circuit.probability(&probs);
            assert!(
                (direct - via_circuit).abs() < 1e-12,
                "{direct} vs {via_circuit}"
            );
        }
    }

    #[test]
    fn evaluate_once_compile_many() {
        // The point of the artifact: one compilation, many weightings.
        let d = sample_dnf();
        let circuit = compile(&d);
        let p1 = circuit.probability(&[0.2, 0.2, 0.2, 0.2]);
        let p2 = circuit.probability(&[0.8, 0.8, 0.8, 0.8]);
        assert!(p2 > p1);
    }

    #[test]
    fn constants_compile_to_leaves() {
        assert_eq!(compile(&Dnf::new()).nodes, vec![Node::False]);
        let t = compile(&Dnf::truth());
        assert_eq!(t.nodes[t.root], Node::True);
    }

    #[test]
    fn circuit_counts_decisions() {
        let d = sample_dnf();
        let circuit = compile(&d);
        // e0 is shared by two clauses → at least one decision on it; the
        // e3 clause is an independent component.
        assert!(circuit.decisions() >= 1);
        assert!(circuit.size() >= 5);
    }

    #[test]
    fn random_formulas_match_direct_evaluator() {
        let mut seed = 0xabcdef9876543210u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..25 {
            let n = 7usize;
            let mut d = Dnf::new();
            for _ in 0..(1 + next() % 5) {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = (next() % n as u64) as u32;
                        if next() % 2 == 0 {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                d.add_clause(lits);
            }
            let probs: Vec<f64> = (0..n)
                .map(|i| (i as f64 + 1.0) / (n as f64 + 1.0))
                .collect();
            let direct = exact_probability(&d, &probs);
            let circuit = compile(&d);
            let via = circuit.probability(&probs);
            assert!((direct - via).abs() < 1e-10, "dnf={d}");
        }
    }
}
