//! The query service: a `TcpListener` feeding a fixed worker pool, every
//! worker holding its own wait-free [`pdb::ReaderHandle`] into the shared
//! [`pdb::EpochStore`]. Reads (`/eval`, `/rank`, `/watch`) evaluate
//! against immutable `Arc<ProbDb>` snapshots and never block the writer;
//! `/apply` runs under the store's single-writer lock and publishes a new
//! epoch. The engine is shared across workers — its plan cache is the
//! sharded-lock LRU and its result cache short-circuits repeated
//! identical reads within an epoch.

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cq::{parse_query, Query, Term, Var, Vocabulary};
use dichotomy::engine::{Engine, ExecOptions, Strategy};
use dichotomy::ranking::ranked_answers_counted;
use pdb::{EpochStore, ProbDb, ReaderHandle};
use telemetry::json::{escape, parse, Json};
use telemetry::metrics::format_f64;
use telemetry::{Counter, Histogram};

use crate::http::{self, ChunkedResponse, Request};

/// Server configuration. `Default` matches the CLI's evaluation defaults
/// (100k Monte-Carlo budget, fixed seed) with 4 workers on an ephemeral
/// loopback port.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Fixed worker pool size (each worker owns one epoch reader slot).
    pub workers: usize,
    /// Monte-Carlo sample budget for `Strategy::Auto` hard queries.
    pub mc_samples: u64,
    /// RNG seed (kept fixed so identical requests are reproducible and
    /// result-cacheable).
    pub seed: u64,
    /// Executor options for the shared engine.
    pub exec: ExecOptions,
    /// How long a `/watch` stream waits for the next epoch before
    /// terminating the stream.
    pub watch_timeout: Duration,
    /// Interpose the result cache (on by default — it is the point of
    /// serving many identical reads per epoch).
    pub result_cache: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            mc_samples: 100_000,
            seed: 0xDA151,
            exec: ExecOptions::default(),
            watch_timeout: Duration::from_secs(5),
            result_cache: true,
        }
    }
}

/// Per-endpoint counters/histograms, registered once in the global
/// telemetry registry (`server.*` family) and cached as `Arc`s.
struct Metrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    eval_ns: Arc<Histogram>,
    rank_ns: Arc<Histogram>,
    apply_ns: Arc<Histogram>,
    watch_ns: Arc<Histogram>,
    publish_ns: Arc<Histogram>,
    watch_updates: Arc<Counter>,
}

impl Metrics {
    fn new() -> Self {
        let r = telemetry::registry();
        Metrics {
            requests: r.counter("server.requests"),
            errors: r.counter("server.errors"),
            eval_ns: r.histogram("server.latency_ns.eval"),
            rank_ns: r.histogram("server.latency_ns.rank"),
            apply_ns: r.histogram("server.latency_ns.apply"),
            watch_ns: r.histogram("server.latency_ns.watch"),
            publish_ns: r.histogram("server.publish_ns"),
            watch_updates: r.counter("server.watch.updates"),
        }
    }
}

struct Shared {
    store: EpochStore,
    engine: Engine,
    opts: ServeOptions,
    /// Accepted connections queued for the worker pool.
    conns: Mutex<VecDeque<TcpStream>>,
    conn_cv: Condvar,
    /// Latest published version, bumped by `/apply` to wake watchers.
    publish: Mutex<u64>,
    publish_cv: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
}

/// Summary of a successful `/apply` (also returned by [`Server::apply`]).
#[derive(Clone, Copy, Debug)]
pub struct ApplySummary {
    pub version: u64,
    pub batches: usize,
    pub ops: usize,
    /// Snapshot-publication latency of this epoch (clone + pointer swap).
    pub publish_ns: u64,
}

/// A running query service. Dropping the server shuts it down and joins
/// all threads.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the acceptor and the fixed worker pool, and start
    /// serving `db`.
    pub fn start(db: ProbDb, opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let mut engine = Engine::with_options(opts.mc_samples, opts.seed, opts.exec);
        if opts.result_cache {
            engine = engine.with_result_cache();
        }
        let shared = Arc::new(Shared {
            store: EpochStore::new(db),
            engine,
            opts: opts.clone(),
            conns: Mutex::new(VecDeque::new()),
            conn_cv: Condvar::new(),
            publish: Mutex::new(0),
            publish_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::new(),
        });
        *shared.publish.lock().expect("publish poisoned") = shared.store.version();

        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        let mut workers = Vec::with_capacity(opts.workers.max(1));
        for i in 0..opts.workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            let reader = worker_shared.store.reader();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(worker_shared, reader))?,
            );
        }
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (use this to connect when the port was 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The epoch store behind the service (tests use this to observe
    /// versions/epochs and to drive out-of-band writes).
    pub fn store(&self) -> &EpochStore {
        &self.shared.store
    }

    /// Current published database version.
    pub fn version(&self) -> u64 {
        self.shared.store.version()
    }

    /// Apply a delta script server-side (same path as the `/apply`
    /// endpoint: parse, apply under the writer lock, publish, wake
    /// watchers).
    pub fn apply(&self, script: &str) -> Result<ApplySummary, String> {
        apply_script(&self.shared, script)
    }

    /// Stop accepting, drain the queue, and join every thread.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.conn_cv.notify_all();
        self.shared.publish_cv.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let mut q = shared.conns.lock().expect("conns poisoned");
                q.push_back(stream);
                drop(q);
                shared.conn_cv.notify_one();
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, mut reader: ReaderHandle) {
    loop {
        let conn = {
            let mut q = shared.conns.lock().expect("conns poisoned");
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .conn_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("conns poisoned");
                q = guard;
            }
        };
        match conn {
            Some(stream) => {
                let _ = handle_connection(&shared, &mut reader, stream);
            }
            None => return,
        }
    }
}

fn handle_connection(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // Short read timeout so idle keep-alive connections notice shutdown;
    // `http::read_request` rides through the timeouts otherwise.
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    let mut rd = BufReader::new(stream.try_clone()?);
    let mut wr = stream;
    loop {
        let req = match http::read_request(&mut rd, || shared.shutdown.load(Ordering::SeqCst)) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.metrics.errors.incr();
                let _ = http::respond_error(&mut wr, 400, &e.to_string());
                return Ok(());
            }
            Err(_) => return Ok(()),
        };
        let keep_alive = req.keep_alive;
        dispatch(shared, reader, &req, &mut wr)?;
        if !keep_alive || shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn dispatch(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    req: &Request,
    wr: &mut TcpStream,
) -> io::Result<()> {
    shared.metrics.requests.incr();
    let start = Instant::now();
    let (status, histo) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (handle_health(shared, wr)?, None),
        ("GET", "/stats") => (handle_stats(shared, wr)?, None),
        ("POST", "/eval") => (
            handle_eval(shared, reader, &req.body, wr)?,
            Some(&shared.metrics.eval_ns),
        ),
        ("POST", "/rank") => (
            handle_rank(shared, reader, &req.body, wr)?,
            Some(&shared.metrics.rank_ns),
        ),
        ("POST", "/apply") => (
            handle_apply(shared, &req.body, wr)?,
            Some(&shared.metrics.apply_ns),
        ),
        ("POST", "/watch") => (
            handle_watch(shared, reader, &req.body, wr)?,
            Some(&shared.metrics.watch_ns),
        ),
        (_, "/health" | "/stats" | "/eval" | "/rank" | "/apply" | "/watch") => {
            http::respond_error(wr, 405, "method not allowed")?;
            (405, None)
        }
        _ => {
            http::respond_error(wr, 404, "no such endpoint")?;
            (404, None)
        }
    };
    if let Some(h) = histo {
        h.record_ns(start.elapsed().as_nanos() as u64);
    }
    if status >= 400 {
        shared.metrics.errors.incr();
    }
    Ok(())
}

/// Parse the request body as a JSON object (empty body → empty object).
fn parse_body(body: &str) -> Result<Json, String> {
    if body.trim().is_empty() {
        return Ok(Json::Obj(Default::default()));
    }
    parse(body).map_err(|e| format!("bad JSON body: {e}"))
}

/// Parse `text` against a *clone* of the snapshot's vocabulary and reject
/// queries that intern anything new. Fresh interning is deterministic, so
/// two queries naming two *different* unknown relations would otherwise
/// collide in the plan/result caches (both would get the next free id);
/// rejecting up front keeps cache keys honest and gives the client a real
/// error instead of probability 0.
fn parse_known_query(snap: &ProbDb, text: &str) -> Result<(Query, Vocabulary), String> {
    let mut voc = snap.voc.clone();
    let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
    let known_rels = snap.voc.num_relations() as u32;
    for atom in &q.atoms {
        if atom.rel.0 >= known_rels {
            return Err(format!(
                "unknown relation '{}' (not in the served database)",
                voc.rel_name(atom.rel)
            ));
        }
        for t in &atom.args {
            if let Term::Const(v) = *t {
                if v.is_named() && snap.voc.value_name(v).starts_with('#') {
                    return Err(format!(
                        "unknown constant {} (not in the served database)",
                        voc.value_name(v)
                    ));
                }
            }
        }
    }
    Ok((q, voc))
}

fn handle_health(shared: &Arc<Shared>, wr: &mut TcpStream) -> io::Result<u16> {
    let body = format!(
        "{{\"ok\":true,\"version\":{},\"epoch\":{}}}",
        shared.store.version(),
        shared.store.epoch()
    );
    http::respond_json(wr, 200, &body)?;
    Ok(200)
}

fn handle_stats(shared: &Arc<Shared>, wr: &mut TcpStream) -> io::Result<u16> {
    let plans = shared.engine.cache_stats();
    let (rc_hits, rc_misses, rc_len) = match shared.engine.result_cache() {
        Some(rc) => (rc.hits(), rc.misses(), rc.len()),
        None => (0, 0, 0),
    };
    let m = &shared.metrics;
    let body = format!(
        concat!(
            "{{\"version\":{},\"epoch\":{},\"retired_epochs\":{},",
            "\"requests\":{},\"errors\":{},\"watch_updates\":{},",
            "\"plan_cache\":{{\"hits\":{},\"misses\":{},\"classifications\":{}}},",
            "\"result_cache\":{{\"enabled\":{},\"hits\":{},\"misses\":{},\"entries\":{}}},",
            "\"publish\":{{\"count\":{},\"last_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}}}"
        ),
        shared.store.version(),
        shared.store.epoch(),
        shared.store.retired_epochs(),
        m.requests.get(),
        m.errors.get(),
        m.watch_updates.get(),
        plans.hits,
        plans.misses,
        plans.classifications,
        shared.engine.result_cache().is_some(),
        rc_hits,
        rc_misses,
        rc_len,
        m.publish_ns.count(),
        shared.store.last_publish_ns(),
        m.publish_ns.quantile_ns(0.50),
        m.publish_ns.quantile_ns(0.99),
    );
    http::respond_json(wr, 200, &body)?;
    Ok(200)
}

fn handle_eval(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    body: &str,
    wr: &mut TcpStream,
) -> io::Result<u16> {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(e) => return bad_request(wr, &e),
    };
    let Some(qtext) = doc.get("query").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'query'");
    };
    let snap = reader.snapshot();
    let (q, _) = match parse_known_query(&snap, qtext) {
        Ok(x) => x,
        Err(e) => return bad_request(wr, &e),
    };
    let strategy = match doc.get("samples").and_then(|j| j.as_u64()) {
        Some(samples) => Strategy::MonteCarlo { samples },
        None if doc.get("exact").is_some_and(|j| j == &Json::Bool(true)) => Strategy::ExactLineage,
        None => Strategy::Auto,
    };
    let ev = match shared.engine.evaluate(&snap, &q, strategy) {
        Ok(ev) => ev,
        Err(e) => return bad_request(wr, &e.to_string()),
    };
    let out = format!(
        concat!(
            "{{\"probability\":{},\"std_error\":{},\"method\":\"{}\",",
            "\"cache_hit\":{},\"result_cache_hit\":{},\"version\":{},\"epoch\":{}}}"
        ),
        format_f64(ev.probability),
        format_f64(ev.std_error),
        escape(&ev.method.to_string()),
        ev.cache_hit,
        ev.result_cache_hit,
        snap.version(),
        shared.store.epoch(),
    );
    http::respond_json(wr, 200, &out)?;
    Ok(200)
}

fn handle_rank(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    body: &str,
    wr: &mut TcpStream,
) -> io::Result<u16> {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(e) => return bad_request(wr, &e),
    };
    let Some(qtext) = doc.get("query").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'query'");
    };
    let Some(head_text) = doc.get("head").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'head' (e.g. \"x0\" or \"x0 x1\")");
    };
    let top = doc.get("top").and_then(|j| j.as_u64()).map(|t| t as usize);
    let snap = reader.snapshot();
    let (q, _) = match parse_known_query(&snap, qtext) {
        Ok(x) => x,
        Err(e) => return bad_request(wr, &e),
    };
    // Head variables use the CLI's convention: `xN` names `Var(N)`.
    let mut head = Vec::new();
    for name in head_text.split([' ', ',']).filter(|s| !s.is_empty()) {
        let Ok(idx) = name.trim_start_matches('x').parse::<u32>() else {
            return bad_request(wr, &format!("bad head variable '{name}'"));
        };
        let v = Var(idx);
        if !q.vars().contains(&v) {
            return bad_request(wr, &format!("head variable '{name}' not in query"));
        }
        head.push(v);
    }
    if head.is_empty() {
        return bad_request(wr, "empty 'head'");
    }
    let (mut answers, _run) =
        match ranked_answers_counted(&shared.engine, &snap, &q, &head, Strategy::Auto) {
            Ok(x) => x,
            Err(e) => return bad_request(wr, &e.to_string()),
        };
    if let Some(k) = top {
        answers.truncate(k);
    }
    let rows: Vec<String> = answers
        .iter()
        .map(|a| {
            let tuple: Vec<String> = a
                .tuple
                .iter()
                .map(|v| format!("\"{}\"", escape(&snap.voc.value_name(*v))))
                .collect();
            format!(
                "{{\"tuple\":[{}],\"probability\":{},\"std_error\":{},\"method\":\"{}\"}}",
                tuple.join(","),
                format_f64(a.probability),
                format_f64(a.std_error),
                escape(&a.method.to_string()),
            )
        })
        .collect();
    let out = format!(
        "{{\"version\":{},\"answers\":[{}]}}",
        snap.version(),
        rows.join(",")
    );
    http::respond_json(wr, 200, &out)?;
    Ok(200)
}

/// The shared `/apply` path: parse the delta script against a clone of
/// the writer's vocabulary (so a rejected script leaves nothing behind),
/// apply every batch under the writer lock, publish, and wake watchers.
fn apply_script(shared: &Arc<Shared>, script: &str) -> Result<ApplySummary, String> {
    let applied = shared.store.with_writer(|db| {
        let mut voc = db.voc.clone();
        let batches =
            pdb::text::parse_delta_batches(&mut voc, script).map_err(|e| e.to_string())?;
        db.voc = voc;
        let mut ops = 0;
        let mut version = db.version();
        for b in &batches {
            ops += b.ops.len();
            version = db.apply(b);
        }
        Ok::<_, String>((batches.len(), ops, version))
    });
    let (batches, ops, version) = applied?;
    let publish_ns = shared.store.last_publish_ns();
    shared.metrics.publish_ns.record_ns(publish_ns);
    {
        let mut latest = shared.publish.lock().expect("publish poisoned");
        if version > *latest {
            *latest = version;
        }
    }
    shared.publish_cv.notify_all();
    Ok(ApplySummary {
        version,
        batches,
        ops,
        publish_ns,
    })
}

fn handle_apply(shared: &Arc<Shared>, body: &str, wr: &mut TcpStream) -> io::Result<u16> {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(e) => return bad_request(wr, &e),
    };
    let Some(script) = doc.get("deltas").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'deltas' (a delta script)");
    };
    match apply_script(shared, script) {
        Ok(s) => {
            let out = format!(
                "{{\"version\":{},\"batches\":{},\"ops\":{},\"publish_ns\":{}}}",
                s.version, s.batches, s.ops, s.publish_ns
            );
            http::respond_json(wr, 200, &out)?;
            Ok(200)
        }
        // The TextError Display carries "line L (batch B, op O): ..." so
        // the client learns exactly which delta was rejected.
        Err(e) => bad_request(wr, &e),
    }
}

fn handle_watch(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    body: &str,
    wr: &mut TcpStream,
) -> io::Result<u16> {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(e) => return bad_request(wr, &e),
    };
    let Some(qtext) = doc.get("query").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'query'");
    };
    let updates = doc
        .get("updates")
        .and_then(|j| j.as_u64())
        .unwrap_or(1)
        .clamp(1, 1000) as usize;
    let timeout = doc
        .get("timeout_ms")
        .and_then(|j| j.as_u64())
        .map(Duration::from_millis)
        .unwrap_or(shared.opts.watch_timeout);

    let snap = reader.snapshot();
    let (q, _) = match parse_known_query(&snap, qtext) {
        Ok(x) => x,
        Err(e) => return bad_request(wr, &e),
    };
    let view = match shared.engine.subscribe(&snap, &q) {
        Ok(v) => v,
        Err(e) => return bad_request(wr, &e.to_string()),
    };
    // First reading before committing to a chunked response, so plan or
    // read failures still get a proper error status.
    let first = match view.read(&snap) {
        Ok(r) => r,
        Err(e) => return bad_request(wr, &e.to_string()),
    };

    let mut resp = ChunkedResponse::begin(wr.try_clone()?, 200)?;
    let mut last_version = first.version;
    resp.chunk(&reading_json(&first))?;
    shared.metrics.watch_updates.incr();
    let mut delivered = 1;
    let deadline = Instant::now() + timeout;
    while delivered < updates {
        // Wait for the next published epoch (or the deadline / shutdown).
        let mut latest = shared.publish.lock().expect("publish poisoned");
        while *latest <= last_version {
            if shared.shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                break;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (guard, _) = shared
                .publish_cv
                .wait_timeout(latest, remaining.min(Duration::from_millis(50)))
                .expect("publish poisoned");
            latest = guard;
        }
        let available = *latest;
        drop(latest);
        if available <= last_version {
            break; // timed out or shutting down — terminate the stream.
        }
        let snap = reader.snapshot();
        if snap.version() <= last_version {
            continue; // our reader raced the publish; try again.
        }
        let reading = match view.read(&snap) {
            Ok(r) => r,
            Err(_) => break,
        };
        resp.chunk(&reading_json(&reading))?;
        shared.metrics.watch_updates.incr();
        last_version = reading.version;
        delivered += 1;
    }
    resp.finish()?;
    Ok(200)
}

fn reading_json(r: &dichotomy::ViewReading) -> String {
    format!(
        "{{\"version\":{},\"probability\":{},\"refreshed\":{},\"method\":\"{}\"}}\n",
        r.version,
        format_f64(r.evaluation.probability),
        r.refreshed,
        escape(&r.evaluation.method.to_string()),
    )
}

fn bad_request(wr: &mut TcpStream, message: &str) -> io::Result<u16> {
    http::respond_error(wr, 400, message)?;
    Ok(400)
}
