//! The query service: a `TcpListener` feeding a fixed worker pool, every
//! worker holding its own wait-free [`pdb::ReaderHandle`] into the shared
//! [`pdb::EpochStore`]. Reads (`/eval`, `/rank`, `/watch`) evaluate
//! against immutable `Arc<ProbDb>` snapshots and never block the writer;
//! `/apply` runs under the store's single-writer lock and publishes a new
//! epoch. The engine is shared across workers — its plan cache is the
//! sharded-lock LRU and its result cache short-circuits repeated
//! identical reads within an epoch.
//!
//! # Observability (on by default)
//!
//! Every request flows through three always-on, purely observational
//! layers — none of them touch the evaluation path, so served answers
//! stay bit-identical to a direct engine call:
//!
//! * **Metrics** — per-endpoint request/status-code counters, an
//!   in-flight gauge, and per-endpoint latency histograms, all in the
//!   process-global telemetry registry. `GET /metrics` renders the whole
//!   registry in Prometheus text exposition format.
//! * **Access log** — one JSONL line per request (timestamp, endpoint,
//!   status, latency, epoch version, canonical query key, cache
//!   outcomes), kept as a bounded in-memory tail
//!   ([`Server::access_log_tail`]) and optionally appended to a file.
//!   Requests at or above the slow threshold (`ServeOptions::slow_ms`,
//!   env `ENGINE_SLOW_MS`, default 500 ms) additionally carry a `plan`
//!   object: method, dichotomy classification, and per-operator counters.
//! * **Flight recorder** — a fixed-capacity lock-light ring
//!   ([`telemetry::recorder::Ring`]) of per-request records, with the
//!   serving thread's span capture retained for slow requests. Served by
//!   `GET /debug/requests`; clients can also pass `"trace": true` on
//!   `/eval`/`/rank` to get that request's spans inline in the response.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use cq::{parse_query, Query, Term, Var, Vocabulary};
use dichotomy::engine::{Engine, ExecOptions, Strategy};
use dichotomy::ranking::{ranked_answers_captured, ranked_answers_counted};
use pdb::{EpochStore, ProbDb, ReaderHandle};
use telemetry::json::{escape, parse, Json};
use telemetry::metrics::format_f64;
use telemetry::recorder::Ring;
use telemetry::{Counter, Gauge, Histogram, SpanRec};

use crate::http::{self, ChunkedResponse, Request};

/// Slow-query threshold when neither [`ServeOptions::slow_ms`] nor the
/// `ENGINE_SLOW_MS` environment variable says otherwise.
pub const DEFAULT_SLOW_MS: u64 = 500;

/// Flight-recorder capacity (requests retained) by default.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

/// Access-log lines retained in memory for [`Server::access_log_tail`].
const ACCESS_TAIL_CAP: usize = 1024;

/// Server configuration. `Default` matches the CLI's evaluation defaults
/// (100k Monte-Carlo budget, fixed seed) with 4 workers on an ephemeral
/// loopback port, observability on.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Fixed worker pool size (each worker owns one epoch reader slot).
    pub workers: usize,
    /// Monte-Carlo sample budget for `Strategy::Auto` hard queries.
    pub mc_samples: u64,
    /// RNG seed (kept fixed so identical requests are reproducible and
    /// result-cacheable).
    pub seed: u64,
    /// Executor options for the shared engine.
    pub exec: ExecOptions,
    /// How long a `/watch` stream waits for the next epoch before
    /// terminating the stream.
    pub watch_timeout: Duration,
    /// Interpose the result cache (on by default — it is the point of
    /// serving many identical reads per epoch).
    pub result_cache: bool,
    /// Slow-query threshold in milliseconds. `None` consults
    /// `ENGINE_SLOW_MS`, then falls back to [`DEFAULT_SLOW_MS`]. `0`
    /// means every request takes the slow-capture path (CI pins that this
    /// never perturbs results).
    pub slow_ms: Option<u64>,
    /// Append the JSONL access log to this file (the bounded in-memory
    /// tail is kept either way).
    pub access_log_path: Option<String>,
    /// The access log + flight recorder. On by default; the bench harness
    /// turns it off to measure the PR-9 baseline.
    pub observability: bool,
    /// Flight-recorder ring capacity (requests retained).
    pub recorder_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            mc_samples: 100_000,
            seed: 0xDA151,
            exec: ExecOptions::default(),
            watch_timeout: Duration::from_secs(5),
            result_cache: true,
            slow_ms: None,
            access_log_path: None,
            observability: true,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
        }
    }
}

/// The endpoints the service knows, as metric labels; `other` absorbs
/// unknown paths so scrape cardinality stays fixed.
const ENDPOINTS: [&str; 9] = [
    "eval", "rank", "apply", "watch", "health", "stats", "metrics", "debug", "other",
];

/// One endpoint's instruments.
struct EndpointMetrics {
    name: &'static str,
    requests: Arc<Counter>,
    latency: Arc<Histogram>,
    /// Lazily-registered per-status-code counters. The set of statuses an
    /// endpoint emits is tiny (200 plus a few 4xx/5xx), so a linear scan
    /// under a `Mutex` beats formatting a registry key on every request.
    status: Mutex<Vec<(u16, Arc<Counter>)>>,
}

impl EndpointMetrics {
    /// Bump `server.endpoint.<name>.status.<code>`, registering the
    /// counter on first sight of `code`.
    fn count_status(&self, code: u16) {
        let mut cached = self.status.lock().unwrap();
        if let Some((_, c)) = cached.iter().find(|(s, _)| *s == code) {
            c.incr();
            return;
        }
        let c =
            telemetry::registry().counter(&format!("server.endpoint.{}.status.{code}", self.name));
        c.incr();
        cached.push((code, c));
    }
}

/// Per-endpoint counters/histograms, registered once in the global
/// telemetry registry (`server.*` family) and cached as `Arc`s.
struct Metrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    inflight: Arc<Gauge>,
    publish_ns: Arc<Histogram>,
    watch_updates: Arc<Counter>,
    endpoints: Vec<EndpointMetrics>,
}

impl Metrics {
    fn new() -> Self {
        let r = telemetry::registry();
        Metrics {
            requests: r.counter("server.requests"),
            errors: r.counter("server.errors"),
            inflight: r.gauge("server.inflight"),
            publish_ns: r.histogram("server.publish_ns"),
            watch_updates: r.counter("server.watch.updates"),
            endpoints: ENDPOINTS
                .iter()
                .map(|&name| EndpointMetrics {
                    name,
                    requests: r.counter(&format!("server.endpoint.{name}.requests")),
                    latency: r.histogram(&format!("server.latency_ns.{name}")),
                    status: Mutex::new(Vec::new()),
                })
                .collect(),
        }
    }

    /// The instruments for `name` (falls back to `other`).
    fn endpoint(&self, name: &str) -> &EndpointMetrics {
        self.endpoints
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| self.endpoints.last().expect("other endpoint"))
    }
}

/// Milliseconds since the Unix epoch (wall-clock timestamps for logs).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// What a handler learned about its request, threaded back to the
/// observability layer (everything optional — error paths report what
/// they got to).
#[derive(Default)]
struct ReqInfo {
    /// Canonical query key (`Query::cache_key()`).
    query_key: Option<String>,
    /// Snapshot version the request evaluated against.
    version: Option<u64>,
    epoch: Option<u64>,
    cache_hit: Option<bool>,
    result_cache_hit: Option<bool>,
    /// Evaluation method (`Method` Display).
    method: Option<String>,
    /// Dichotomy classification (`Complexity` Display).
    classification: Option<String>,
    /// Per-operator counters of the extensional execution.
    ops: Option<safeplan::OpCounters>,
    /// The serving thread's span capture for this request.
    spans: Option<Arc<Vec<SpanRec>>>,
}

/// One flight-recorder entry.
#[derive(Clone)]
struct RequestRecord {
    ts_ms: u64,
    endpoint: &'static str,
    status: u16,
    latency_ns: u64,
    slow: bool,
    info: Arc<ReqInfo>,
}

/// The JSONL access log: a bounded in-memory tail plus an optional file
/// appender. Pushes format off the hot path's locks — the line is built
/// first, then appended under the tail/file mutexes.
struct AccessLog {
    tail: Mutex<VecDeque<String>>,
    file: Option<Mutex<io::BufWriter<std::fs::File>>>,
}

impl AccessLog {
    fn open(path: Option<&str>) -> io::Result<AccessLog> {
        let file = match path {
            Some(p) => Some(Mutex::new(io::BufWriter::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)?,
            ))),
            None => None,
        };
        Ok(AccessLog {
            tail: Mutex::new(VecDeque::with_capacity(ACCESS_TAIL_CAP)),
            file,
        })
    }

    fn push(&self, line: String) {
        if let Some(f) = &self.file {
            let mut f = f.lock().expect("access log poisoned");
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
        let mut tail = self.tail.lock().expect("access tail poisoned");
        if tail.len() == ACCESS_TAIL_CAP {
            tail.pop_front();
        }
        tail.push_back(line);
    }

    fn lines(&self) -> Vec<String> {
        self.tail
            .lock()
            .expect("access tail poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

/// The always-on observability state: flight recorder + access log +
/// resolved slow threshold.
struct Obs {
    recorder: Ring<RequestRecord>,
    access: AccessLog,
    slow_ns: u64,
}

impl Obs {
    /// Record one finished request: an access-log line (slow entries gain
    /// the plan summary) and a flight-recorder entry (slow entries retain
    /// the span capture).
    fn observe(&self, endpoint: &'static str, status: u16, latency_ns: u64, mut info: ReqInfo) {
        let slow = latency_ns >= self.slow_ns;
        if !slow {
            info.spans = None; // retain span captures only for slow requests
        }
        let info = Arc::new(info);
        self.access.push(access_line(
            unix_ms(),
            endpoint,
            status,
            latency_ns,
            slow,
            &info,
        ));
        self.recorder.push(RequestRecord {
            ts_ms: unix_ms(),
            endpoint,
            status,
            latency_ns,
            slow,
            info,
        });
    }
}

struct Shared {
    store: EpochStore,
    engine: Engine,
    opts: ServeOptions,
    /// Accepted connections queued for the worker pool.
    conns: Mutex<VecDeque<TcpStream>>,
    conn_cv: Condvar,
    /// Latest published version, bumped by `/apply` to wake watchers.
    publish: Mutex<u64>,
    publish_cv: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    started: Instant,
    /// Resolved slow threshold in milliseconds (for reporting).
    slow_ms: u64,
    /// `None` when `ServeOptions::observability` is off.
    obs: Option<Obs>,
}

/// Summary of a successful `/apply` (also returned by [`Server::apply`]).
#[derive(Clone, Copy, Debug)]
pub struct ApplySummary {
    pub version: u64,
    pub batches: usize,
    pub ops: usize,
    /// Snapshot-publication latency of this epoch (clone + pointer swap).
    pub publish_ns: u64,
}

/// A running query service. Dropping the server shuts it down and joins
/// all threads.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the acceptor and the fixed worker pool, and start
    /// serving `db`.
    pub fn start(db: ProbDb, opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let mut engine = Engine::with_options(opts.mc_samples, opts.seed, opts.exec);
        if opts.result_cache {
            engine = engine.with_result_cache();
        }
        let slow_ms = opts
            .slow_ms
            .or_else(|| {
                std::env::var("ENGINE_SLOW_MS")
                    .ok()
                    .and_then(|s| s.trim().parse::<u64>().ok())
            })
            .unwrap_or(DEFAULT_SLOW_MS);
        let obs = if opts.observability {
            Some(Obs {
                recorder: Ring::new(opts.recorder_capacity),
                access: AccessLog::open(opts.access_log_path.as_deref())?,
                slow_ns: slow_ms.saturating_mul(1_000_000),
            })
        } else {
            None
        };
        let shared = Arc::new(Shared {
            store: EpochStore::new(db),
            engine,
            opts: opts.clone(),
            conns: Mutex::new(VecDeque::new()),
            conn_cv: Condvar::new(),
            publish: Mutex::new(0),
            publish_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::new(),
            started: Instant::now(),
            slow_ms,
            obs,
        });
        *shared.publish.lock().expect("publish poisoned") = shared.store.version();

        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        let mut workers = Vec::with_capacity(opts.workers.max(1));
        for i in 0..opts.workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            let reader = worker_shared.store.reader();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(worker_shared, reader))?,
            );
        }
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (use this to connect when the port was 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The epoch store behind the service (tests use this to observe
    /// versions/epochs and to drive out-of-band writes).
    pub fn store(&self) -> &EpochStore {
        &self.shared.store
    }

    /// Current published database version.
    pub fn version(&self) -> u64 {
        self.shared.store.version()
    }

    /// Apply a delta script server-side (same path as the `/apply`
    /// endpoint: parse, apply under the writer lock, publish, wake
    /// watchers).
    pub fn apply(&self, script: &str) -> Result<ApplySummary, String> {
        apply_script(&self.shared, script)
    }

    /// The retained tail of the JSONL access log (empty when
    /// observability is off). Tests and the bench harness read this
    /// instead of tailing a file.
    pub fn access_log_tail(&self) -> Vec<String> {
        match &self.shared.obs {
            Some(obs) => obs.access.lines(),
            None => Vec::new(),
        }
    }

    /// The resolved slow-query threshold in milliseconds.
    pub fn slow_ms(&self) -> u64 {
        self.shared.slow_ms
    }

    /// Stop accepting, drain the queue, and join every thread.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.conn_cv.notify_all();
        self.shared.publish_cv.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let mut q = shared.conns.lock().expect("conns poisoned");
                q.push_back(stream);
                drop(q);
                shared.conn_cv.notify_one();
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, mut reader: ReaderHandle) {
    loop {
        let conn = {
            let mut q = shared.conns.lock().expect("conns poisoned");
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .conn_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("conns poisoned");
                q = guard;
            }
        };
        match conn {
            Some(stream) => {
                let _ = handle_connection(&shared, &mut reader, stream);
            }
            None => return,
        }
    }
}

fn handle_connection(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // Short read timeout so idle keep-alive connections notice shutdown;
    // `http::read_request` rides through the timeouts otherwise.
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    let mut rd = BufReader::new(stream.try_clone()?);
    let mut wr = stream;
    loop {
        let req = match http::read_request(&mut rd, || shared.shutdown.load(Ordering::SeqCst)) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.metrics.errors.incr();
                let _ = http::respond_error(&mut wr, 400, &e.to_string());
                return Ok(());
            }
            Err(_) => return Ok(()),
        };
        let keep_alive = req.keep_alive;
        dispatch(shared, reader, &req, &mut wr)?;
        if !keep_alive || shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Pairs an in-flight gauge increment with its decrement, so the gauge
/// balances even when a handler bails with an I/O error.
struct InflightGuard<'a>(&'a Gauge);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.decr();
    }
}

/// The metric label for a request path (query strings stripped).
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/eval" => "eval",
        "/rank" => "rank",
        "/apply" => "apply",
        "/watch" => "watch",
        "/health" => "health",
        "/stats" => "stats",
        "/metrics" => "metrics",
        "/debug/requests" => "debug",
        _ => "other",
    }
}

fn dispatch(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    req: &Request,
    wr: &mut TcpStream,
) -> io::Result<()> {
    shared.metrics.requests.incr();
    let path = req.path.split('?').next().unwrap_or("");
    let ep = shared.metrics.endpoint(endpoint_label(path));
    ep.requests.incr();
    shared.metrics.inflight.incr();
    let _inflight = InflightGuard(&shared.metrics.inflight);
    let start = Instant::now();
    let mut info = ReqInfo::default();
    let status = match (req.method.as_str(), path) {
        ("GET", "/health") => handle_health(shared, wr)?,
        ("GET", "/stats") => handle_stats(shared, wr)?,
        ("GET", "/metrics") => handle_metrics(wr)?,
        ("GET", "/debug/requests") => handle_debug_requests(shared, wr)?,
        ("POST", "/eval") => handle_eval(shared, reader, &req.body, wr, &mut info)?,
        ("POST", "/rank") => handle_rank(shared, reader, &req.body, wr, &mut info)?,
        ("POST", "/apply") => handle_apply(shared, &req.body, wr)?,
        ("POST", "/watch") => handle_watch(shared, reader, &req.body, wr)?,
        (
            _,
            "/health" | "/stats" | "/metrics" | "/debug/requests" | "/eval" | "/rank" | "/apply"
            | "/watch",
        ) => {
            http::respond_error(wr, 405, "method not allowed")?;
            405
        }
        _ => {
            http::respond_error(wr, 404, "no such endpoint")?;
            404
        }
    };
    let latency_ns = start.elapsed().as_nanos() as u64;
    ep.latency.record_ns(latency_ns);
    ep.count_status(status);
    if status >= 400 {
        shared.metrics.errors.incr();
    }
    if let Some(obs) = &shared.obs {
        obs.observe(ep.name, status, latency_ns, info);
    }
    Ok(())
}

/// Parse the request body as a JSON object (empty body → empty object).
fn parse_body(body: &str) -> Result<Json, String> {
    if body.trim().is_empty() {
        return Ok(Json::Obj(Default::default()));
    }
    parse(body).map_err(|e| format!("bad JSON body: {e}"))
}

/// Parse `text` against a *clone* of the snapshot's vocabulary and reject
/// queries that intern anything new. Fresh interning is deterministic, so
/// two queries naming two *different* unknown relations would otherwise
/// collide in the plan/result caches (both would get the next free id);
/// rejecting up front keeps cache keys honest and gives the client a real
/// error instead of probability 0.
fn parse_known_query(snap: &ProbDb, text: &str) -> Result<(Query, Vocabulary), String> {
    let mut voc = snap.voc.clone();
    let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
    let known_rels = snap.voc.num_relations() as u32;
    for atom in &q.atoms {
        if atom.rel.0 >= known_rels {
            return Err(format!(
                "unknown relation '{}' (not in the served database)",
                voc.rel_name(atom.rel)
            ));
        }
        for t in &atom.args {
            if let Term::Const(v) = *t {
                if v.is_named() && snap.voc.value_name(v).starts_with('#') {
                    return Err(format!(
                        "unknown constant {} (not in the served database)",
                        voc.value_name(v)
                    ));
                }
            }
        }
    }
    Ok((q, voc))
}

fn handle_health(shared: &Arc<Shared>, wr: &mut TcpStream) -> io::Result<u16> {
    let body = format!(
        "{{\"ok\":true,\"version\":{},\"epoch\":{}}}",
        shared.store.version(),
        shared.store.epoch()
    );
    http::respond_json(wr, 200, &body)?;
    Ok(200)
}

fn handle_stats(shared: &Arc<Shared>, wr: &mut TcpStream) -> io::Result<u16> {
    let plans = shared.engine.cache_stats();
    let planner = shared.engine.planner();
    let (rc_hits, rc_misses, rc_len, rc_contended) = match shared.engine.result_cache() {
        Some(rc) => (rc.hits(), rc.misses(), rc.len(), rc.contended()),
        None => (0, 0, 0, 0),
    };
    let m = &shared.metrics;
    // Per-endpoint latency summaries from the registry histograms (note:
    // the registry is process-global, so in a multi-server process these
    // aggregate across servers — same as every `server.*` counter).
    let endpoints: Vec<String> = m
        .endpoints
        .iter()
        .map(|e| {
            format!(
                "\"{}\":{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                e.name,
                e.latency.count(),
                e.latency.p50_ns(),
                e.latency.p95_ns(),
                e.latency.p99_ns(),
            )
        })
        .collect();
    let (rec_enabled, rec_capacity, rec_recorded) = match &shared.obs {
        Some(obs) => (true, obs.recorder.capacity(), obs.recorder.pushed()),
        None => (false, 0, 0),
    };
    let body = format!(
        concat!(
            "{{\"version\":{},\"epoch\":{},\"retired_epochs\":{},\"uptime_ms\":{},",
            "\"requests\":{},\"errors\":{},\"inflight\":{},\"watch_updates\":{},",
            "\"spans_dropped\":{},",
            "\"plan_cache\":{{\"hits\":{},\"misses\":{},\"classifications\":{},",
            "\"contended\":{},\"ranked_contended\":{}}},",
            "\"result_cache\":{{\"enabled\":{},\"hits\":{},\"misses\":{},\"entries\":{},",
            "\"contended\":{}}},",
            "\"publish\":{{\"count\":{},\"last_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}},",
            "\"endpoints\":{{{}}},",
            "\"recorder\":{{\"enabled\":{},\"capacity\":{},\"recorded\":{},\"slow_ms\":{}}}}}"
        ),
        shared.store.version(),
        shared.store.epoch(),
        shared.store.retired_epochs(),
        shared.started.elapsed().as_millis(),
        m.requests.get(),
        m.errors.get(),
        m.inflight.get(),
        m.watch_updates.get(),
        telemetry::dropped_spans(),
        plans.hits,
        plans.misses,
        plans.classifications,
        planner.cache_contention(),
        planner.ranked_cache_contention(),
        shared.engine.result_cache().is_some(),
        rc_hits,
        rc_misses,
        rc_len,
        rc_contended,
        m.publish_ns.count(),
        shared.store.last_publish_ns(),
        m.publish_ns.quantile_ns(0.50),
        m.publish_ns.quantile_ns(0.99),
        endpoints.join(","),
        rec_enabled,
        rec_capacity,
        rec_recorded,
        shared.slow_ms,
    );
    http::respond_json(wr, 200, &body)?;
    Ok(200)
}

/// `GET /metrics` — the whole registry in Prometheus text exposition.
fn handle_metrics(wr: &mut TcpStream) -> io::Result<u16> {
    let body = telemetry::prometheus_text(telemetry::registry());
    http::respond_text(wr, 200, "text/plain; version=0.0.4", &body)?;
    Ok(200)
}

/// `GET /debug/requests` — the flight recorder: per-endpoint window
/// summaries plus the retained records, newest first, with span captures
/// inline for the slow ones.
fn handle_debug_requests(shared: &Arc<Shared>, wr: &mut TcpStream) -> io::Result<u16> {
    let Some(obs) = &shared.obs else {
        http::respond_json(wr, 200, "{\"enabled\":false,\"requests\":[]}")?;
        return Ok(200);
    };
    let records = obs.recorder.snapshot();
    // Windowed per-endpoint summaries over exactly the retained records
    // (unlike /stats, whose histograms span the process lifetime).
    let mut window: Vec<String> = Vec::new();
    for name in ENDPOINTS {
        let mut lat: Vec<u64> = records
            .iter()
            .filter(|r| r.endpoint == name)
            .map(|r| r.latency_ns)
            .collect();
        if lat.is_empty() {
            continue;
        }
        lat.sort_unstable();
        let slow = records
            .iter()
            .filter(|r| r.endpoint == name && r.slow)
            .count();
        window.push(format!(
            "\"{name}\":{{\"count\":{},\"slow\":{slow},\"p50_ns\":{},\"max_ns\":{}}}",
            lat.len(),
            lat[(lat.len() - 1) / 2],
            lat[lat.len() - 1],
        ));
    }
    let rows: Vec<String> = records.iter().rev().map(record_json).collect();
    let body = format!(
        concat!(
            "{{\"enabled\":true,\"capacity\":{},\"recorded\":{},\"slow_ms\":{},",
            "\"window\":{{{}}},\"requests\":[{}]}}"
        ),
        obs.recorder.capacity(),
        obs.recorder.pushed(),
        shared.slow_ms,
        window.join(","),
        rows.join(","),
    );
    http::respond_json(wr, 200, &body)?;
    Ok(200)
}

/// One flight-recorder record as JSON.
fn record_json(r: &RequestRecord) -> String {
    let mut out = format!(
        "{{\"ts_ms\":{},\"endpoint\":\"{}\",\"status\":{},\"latency_ns\":{},\"slow\":{}",
        r.ts_ms, r.endpoint, r.status, r.latency_ns, r.slow
    );
    push_info_json(&mut out, &r.info);
    if let Some(spans) = &r.info.spans {
        out.push_str(&format!(",\"spans\":{}", spans_json(spans)));
    }
    out.push('}');
    out
}

/// Append the optional per-request fields shared by access-log lines and
/// recorder records (everything a handler filled into [`ReqInfo`]).
fn push_info_json(out: &mut String, info: &ReqInfo) {
    if let Some(v) = info.version {
        out.push_str(&format!(",\"version\":{v}"));
    }
    if let Some(e) = info.epoch {
        out.push_str(&format!(",\"epoch\":{e}"));
    }
    if let Some(k) = &info.query_key {
        out.push_str(&format!(",\"query_key\":\"{}\"", escape(k)));
    }
    if let Some(b) = info.cache_hit {
        out.push_str(&format!(",\"cache_hit\":{b}"));
    }
    if let Some(b) = info.result_cache_hit {
        out.push_str(&format!(",\"result_cache_hit\":{b}"));
    }
}

/// One JSONL access-log line. Slow entries additionally carry the plan
/// summary: method, dichotomy classification, and operator counters.
fn access_line(
    ts_ms: u64,
    endpoint: &str,
    status: u16,
    latency_ns: u64,
    slow: bool,
    info: &ReqInfo,
) -> String {
    let mut out = format!(
        "{{\"ts_ms\":{ts_ms},\"endpoint\":\"{endpoint}\",\"status\":{status},\"latency_ns\":{latency_ns}"
    );
    push_info_json(&mut out, info);
    if slow {
        out.push_str(",\"slow\":true");
        let mut plan = Vec::new();
        if let Some(m) = &info.method {
            plan.push(format!("\"method\":\"{}\"", escape(m)));
        }
        if let Some(c) = &info.classification {
            plan.push(format!("\"classification\":\"{}\"", escape(c)));
        }
        if let Some(ops) = &info.ops {
            plan.push(format!("\"ops\":{}", ops_json(ops)));
        }
        if !plan.is_empty() {
            out.push_str(&format!(",\"plan\":{{{}}}", plan.join(",")));
        }
    }
    out.push('}');
    out
}

/// The per-operator counters of one extensional execution, as JSON.
fn ops_json(ops: &safeplan::OpCounters) -> String {
    format!(
        concat!(
            "{{\"scans\":{},\"index_scans\":{},\"rows_scanned\":{},\"rows_pruned\":{},",
            "\"joins\":{},\"join_rows\":{},\"groups\":{},\"shard_fanout\":{}}}"
        ),
        ops.scans,
        ops.index_scans,
        ops.rows_scanned,
        ops.rows_pruned,
        ops.joins,
        ops.join_rows,
        ops.groups,
        ops.shard_fanout,
    )
}

/// A span capture as a JSON array (inline `"trace"` responses and
/// recorder records share this shape).
fn spans_json(spans: &[SpanRec]) -> String {
    let rows: Vec<String> = spans
        .iter()
        .map(|s| {
            format!(
                "{{\"id\":{},\"parent\":{},\"label\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}",
                s.id,
                s.parent,
                escape(&s.label),
                s.start_ns,
                s.end_ns,
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn handle_eval(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    body: &str,
    wr: &mut TcpStream,
    info: &mut ReqInfo,
) -> io::Result<u16> {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(e) => return bad_request(wr, &e),
    };
    let Some(qtext) = doc.get("query").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'query'");
    };
    let trace = doc.get("trace").is_some_and(|j| j == &Json::Bool(true));
    let snap = reader.snapshot();
    let (q, _) = match parse_known_query(&snap, qtext) {
        Ok(x) => x,
        Err(e) => return bad_request(wr, &e),
    };
    info.query_key = Some(q.cache_key());
    info.version = Some(snap.version());
    info.epoch = Some(shared.store.epoch());
    let strategy = match doc.get("samples").and_then(|j| j.as_u64()) {
        Some(samples) => Strategy::MonteCarlo { samples },
        None if doc.get("exact").is_some_and(|j| j == &Json::Bool(true)) => Strategy::ExactLineage,
        None => Strategy::Auto,
    };
    // Capture the serving thread's spans whenever the recorder might keep
    // them (slow is only known at the end) or the client asked for the
    // trace inline. Capture is purely observational — the evaluation is
    // byte-identical either way.
    let capture = trace || shared.obs.is_some();
    let (ev, spans) = if capture {
        match shared.engine.evaluate_captured(&snap, &q, strategy) {
            Ok((ev, spans)) => (ev, Some(Arc::new(spans))),
            Err(e) => return bad_request(wr, &e.to_string()),
        }
    } else {
        match shared.engine.evaluate(&snap, &q, strategy) {
            Ok(ev) => (ev, None),
            Err(e) => return bad_request(wr, &e.to_string()),
        }
    };
    info.cache_hit = Some(ev.cache_hit);
    info.result_cache_hit = Some(ev.result_cache_hit);
    info.method = Some(ev.method.to_string());
    info.classification = ev.classification.as_ref().map(|c| c.complexity.to_string());
    info.ops = ev.extensional;
    info.spans = spans.clone();
    let trace_field = match (trace, &spans) {
        (true, Some(spans)) => format!(",\"trace\":{}", spans_json(spans)),
        _ => String::new(),
    };
    let out = format!(
        concat!(
            "{{\"probability\":{},\"std_error\":{},\"method\":\"{}\",",
            "\"cache_hit\":{},\"result_cache_hit\":{},\"version\":{},\"epoch\":{}{}}}"
        ),
        format_f64(ev.probability),
        format_f64(ev.std_error),
        escape(&ev.method.to_string()),
        ev.cache_hit,
        ev.result_cache_hit,
        snap.version(),
        shared.store.epoch(),
        trace_field,
    );
    http::respond_json(wr, 200, &out)?;
    Ok(200)
}

fn handle_rank(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    body: &str,
    wr: &mut TcpStream,
    info: &mut ReqInfo,
) -> io::Result<u16> {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(e) => return bad_request(wr, &e),
    };
    let Some(qtext) = doc.get("query").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'query'");
    };
    let trace = doc.get("trace").is_some_and(|j| j == &Json::Bool(true));
    let Some(head_text) = doc.get("head").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'head' (e.g. \"x0\" or \"x0 x1\")");
    };
    let top = doc.get("top").and_then(|j| j.as_u64()).map(|t| t as usize);
    let snap = reader.snapshot();
    let (q, _) = match parse_known_query(&snap, qtext) {
        Ok(x) => x,
        Err(e) => return bad_request(wr, &e),
    };
    // Head variables use the CLI's convention: `xN` names `Var(N)`.
    let mut head = Vec::new();
    for name in head_text.split([' ', ',']).filter(|s| !s.is_empty()) {
        let Ok(idx) = name.trim_start_matches('x').parse::<u32>() else {
            return bad_request(wr, &format!("bad head variable '{name}'"));
        };
        let v = Var(idx);
        if !q.vars().contains(&v) {
            return bad_request(wr, &format!("head variable '{name}' not in query"));
        }
        head.push(v);
    }
    if head.is_empty() {
        return bad_request(wr, "empty 'head'");
    }
    info.query_key = Some(q.cache_key());
    info.version = Some(snap.version());
    info.epoch = Some(shared.store.epoch());
    let capture = trace || shared.obs.is_some();
    let (mut answers, run, spans) = if capture {
        match ranked_answers_captured(&shared.engine, &snap, &q, &head, Strategy::Auto) {
            Ok((answers, run, spans)) => (answers, run, Some(Arc::new(spans))),
            Err(e) => return bad_request(wr, &e.to_string()),
        }
    } else {
        match ranked_answers_counted(&shared.engine, &snap, &q, &head, Strategy::Auto) {
            Ok((answers, run)) => (answers, run, None),
            Err(e) => return bad_request(wr, &e.to_string()),
        }
    };
    info.method = answers.first().map(|a| a.method.to_string());
    info.ops = run.extensional;
    info.spans = spans.clone();
    if let Some(k) = top {
        answers.truncate(k);
    }
    let rows: Vec<String> = answers
        .iter()
        .map(|a| {
            let tuple: Vec<String> = a
                .tuple
                .iter()
                .map(|v| format!("\"{}\"", escape(&snap.voc.value_name(*v))))
                .collect();
            format!(
                "{{\"tuple\":[{}],\"probability\":{},\"std_error\":{},\"method\":\"{}\"}}",
                tuple.join(","),
                format_f64(a.probability),
                format_f64(a.std_error),
                escape(&a.method.to_string()),
            )
        })
        .collect();
    let trace_field = match (trace, &spans) {
        (true, Some(spans)) => format!(",\"trace\":{}", spans_json(spans)),
        _ => String::new(),
    };
    let out = format!(
        "{{\"version\":{},\"answers\":[{}]{}}}",
        snap.version(),
        rows.join(","),
        trace_field,
    );
    http::respond_json(wr, 200, &out)?;
    Ok(200)
}

/// The shared `/apply` path: parse the delta script against a clone of
/// the writer's vocabulary (so a rejected script leaves nothing behind),
/// apply every batch under the writer lock, publish, and wake watchers.
fn apply_script(shared: &Arc<Shared>, script: &str) -> Result<ApplySummary, String> {
    let applied = shared.store.with_writer(|db| {
        let mut voc = db.voc.clone();
        let batches =
            pdb::text::parse_delta_batches(&mut voc, script).map_err(|e| e.to_string())?;
        db.voc = voc;
        let mut ops = 0;
        let mut version = db.version();
        for b in &batches {
            ops += b.ops.len();
            version = db.apply(b);
        }
        Ok::<_, String>((batches.len(), ops, version))
    });
    let (batches, ops, version) = applied?;
    let publish_ns = shared.store.last_publish_ns();
    shared.metrics.publish_ns.record_ns(publish_ns);
    {
        let mut latest = shared.publish.lock().expect("publish poisoned");
        if version > *latest {
            *latest = version;
        }
    }
    shared.publish_cv.notify_all();
    Ok(ApplySummary {
        version,
        batches,
        ops,
        publish_ns,
    })
}

fn handle_apply(shared: &Arc<Shared>, body: &str, wr: &mut TcpStream) -> io::Result<u16> {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(e) => return bad_request(wr, &e),
    };
    let Some(script) = doc.get("deltas").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'deltas' (a delta script)");
    };
    match apply_script(shared, script) {
        Ok(s) => {
            let out = format!(
                "{{\"version\":{},\"batches\":{},\"ops\":{},\"publish_ns\":{}}}",
                s.version, s.batches, s.ops, s.publish_ns
            );
            http::respond_json(wr, 200, &out)?;
            Ok(200)
        }
        // The TextError Display carries "line L (batch B, op O): ..." so
        // the client learns exactly which delta was rejected.
        Err(e) => bad_request(wr, &e),
    }
}

fn handle_watch(
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle,
    body: &str,
    wr: &mut TcpStream,
) -> io::Result<u16> {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(e) => return bad_request(wr, &e),
    };
    let Some(qtext) = doc.get("query").and_then(|j| j.as_str()) else {
        return bad_request(wr, "missing 'query'");
    };
    let updates = doc
        .get("updates")
        .and_then(|j| j.as_u64())
        .unwrap_or(1)
        .clamp(1, 1000) as usize;
    let timeout = doc
        .get("timeout_ms")
        .and_then(|j| j.as_u64())
        .map(Duration::from_millis)
        .unwrap_or(shared.opts.watch_timeout);

    let snap = reader.snapshot();
    let (q, _) = match parse_known_query(&snap, qtext) {
        Ok(x) => x,
        Err(e) => return bad_request(wr, &e),
    };
    let view = match shared.engine.subscribe(&snap, &q) {
        Ok(v) => v,
        Err(e) => return bad_request(wr, &e.to_string()),
    };
    // First reading before committing to a chunked response, so plan or
    // read failures still get a proper error status.
    let first = match view.read(&snap) {
        Ok(r) => r,
        Err(e) => return bad_request(wr, &e.to_string()),
    };

    let mut resp = ChunkedResponse::begin(wr.try_clone()?, 200)?;
    let mut last_version = first.version;
    resp.chunk(&reading_json(&first))?;
    shared.metrics.watch_updates.incr();
    let mut delivered = 1;
    let deadline = Instant::now() + timeout;
    while delivered < updates {
        // Wait for the next published epoch (or the deadline / shutdown).
        let mut latest = shared.publish.lock().expect("publish poisoned");
        while *latest <= last_version {
            if shared.shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                break;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (guard, _) = shared
                .publish_cv
                .wait_timeout(latest, remaining.min(Duration::from_millis(50)))
                .expect("publish poisoned");
            latest = guard;
        }
        let available = *latest;
        drop(latest);
        if available <= last_version {
            break; // timed out or shutting down — terminate the stream.
        }
        let snap = reader.snapshot();
        if snap.version() <= last_version {
            continue; // our reader raced the publish; try again.
        }
        let reading = match view.read(&snap) {
            Ok(r) => r,
            Err(_) => break,
        };
        resp.chunk(&reading_json(&reading))?;
        shared.metrics.watch_updates.incr();
        last_version = reading.version;
        delivered += 1;
    }
    resp.finish()?;
    Ok(200)
}

fn reading_json(r: &dichotomy::ViewReading) -> String {
    format!(
        "{{\"version\":{},\"probability\":{},\"refreshed\":{},\"method\":\"{}\"}}\n",
        r.version,
        format_f64(r.evaluation.probability),
        r.refreshed,
        escape(&r.evaluation.method.to_string()),
    )
}

fn bad_request(wr: &mut TcpStream, message: &str) -> io::Result<u16> {
    http::respond_error(wr, 400, message)?;
    Ok(400)
}
