//! # serve — concurrent query serving over epoch snapshots
//!
//! A hand-rolled HTTP/1.1 + JSON query service over `std::net` (no
//! crates.io, like `exec-parallel` and `telemetry`): a listener feeds a
//! fixed worker pool; every worker owns one wait-free reader slot in the
//! shared [`pdb::EpochStore`] and evaluates against immutable
//! `Arc<ProbDb>` snapshots while a single writer applies `DeltaBatch`es
//! and publishes new epochs.
//!
//! ## Wire protocol
//!
//! HTTP/1.1 over TCP. Requests carry JSON bodies with `Content-Length`;
//! responses are JSON (`Content-Length`) except `watch`, which streams
//! one JSON document per chunk (`Transfer-Encoding: chunked`, one line
//! per published epoch). Connections are keep-alive by default;
//! `Connection: close` is honored. Request-side chunked encoding is
//! rejected. Errors are `{"error": "<message>"}` with a 4xx/5xx status.
//!
//! ## Endpoints
//!
//! | Method | Path      | Body                                              | Response |
//! |--------|-----------|---------------------------------------------------|----------|
//! | GET    | `/health` | —                                                 | `{ok, version, epoch}` |
//! | GET    | `/stats`  | —                                                 | versions, uptime, per-endpoint latency summaries, plan/result-cache counters (incl. contention), publish latency, recorder state |
//! | GET    | `/metrics` | —                                                | the telemetry registry in Prometheus text exposition (`text/plain; version=0.0.4`) |
//! | GET    | `/debug/requests` | —                                         | the flight recorder: per-endpoint window summaries + recent requests, newest first, with span captures for slow ones |
//! | POST   | `/eval`   | `{query, samples?, exact?, trace?}`               | `{probability, std_error, method, cache_hit, result_cache_hit, version, epoch, trace?}` |
//! | POST   | `/rank`   | `{query, head, top?, trace?}` (`head`: `"x0"` or `"x0 x1"`) | `{version, answers: [{tuple, probability, std_error, method}], trace?}` |
//! | POST   | `/apply`  | `{deltas}` (a delta script)                       | `{version, batches, ops, publish_ns}` |
//! | POST   | `/watch`  | `{query, updates?, timeout_ms?}`                  | chunked stream of `{version, probability, refreshed, method}` |
//!
//! `"trace": true` on `/eval`/`/rank` returns the serving thread's span
//! capture for that request inline (`trace: [{id, parent, label,
//! start_ns, end_ns}]`) — no `ENGINE_TRACE` restart needed.
//!
//! Queries naming relations or constants not present in the served
//! database are rejected with 400: fresh interning is deterministic, so
//! two different unknown names would otherwise collide in the plan and
//! result caches.
//!
//! ## Observability
//!
//! On by default (see [`service`] module docs): per-endpoint
//! counters/histograms + in-flight gauge in the global registry, a
//! bounded JSONL access log whose slow entries (≥ `slow_ms`, env
//! `ENGINE_SLOW_MS`) carry the plan summary and operator counters, and a
//! fixed-capacity flight recorder of recent requests. All purely
//! observational: answers are bit-identical with observability off.
//!
//! Rejected `/apply` scripts report exactly which delta failed — the
//! parse error carries `line L (batch B, op O)` positions.
//!
//! ## Epoch discipline invariants
//!
//! 1. **Published epochs are immutable.** A snapshot handed to a reader
//!    never changes; the writer clones, mutates the clone, and swaps the
//!    published pointer.
//! 2. **Versions are monotone.** Each publish carries a strictly greater
//!    database version; a reader's successive snapshots never go
//!    backwards.
//! 3. **No torn reads.** Every response is computed against exactly one
//!    snapshot — bit-for-bit the result of *some* published epoch, never
//!    a mix of two.
//! 4. **Readers never block the writer, the writer never blocks
//!    readers.** Snapshot acquisition is wait-free (an atomic announce +
//!    pointer load); `apply` runs concurrently with in-flight reads.
//!
//! The result cache is keyed by `(db uid, version, seed, exec shape,
//! strategy, Query::cache_key())`, so hits are only possible within one
//! epoch and are bit-identical to cold evaluation; the plan cache is the
//! sharded-lock LRU shared by every worker.

pub mod client;
pub mod http;
pub mod service;

pub use client::{HttpClient, HttpResponse};
pub use service::{ApplySummary, ServeOptions, Server};
