//! A minimal HTTP/1.1 implementation over `std::net` — request parsing,
//! JSON responses, and chunked transfer encoding for streams. No crates.io
//! (same spirit as `exec-parallel` and `telemetry`): the service needs
//! exactly the subset implemented here, and owning it keeps the stack
//! inspectable down to the socket.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! keep-alive (HTTP/1.1 default; `Connection: close` honored), chunked
//! responses for the `watch` stream. Not supported (requests carrying
//! them are rejected): request-side chunked encoding, continuation
//! headers, HTTP/2.

use std::io::{self, BufRead, Write};

/// Longest accepted request head (request line + headers) and body, in
/// bytes. Guards the server against unbounded allocation from a
/// misbehaving client; generous for the JSON bodies the service speaks.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
    /// Keep the connection open after responding (HTTP/1.1 default).
    pub keep_alive: bool,
}

/// Read one request off `rd`. `Ok(None)` means the peer closed the
/// connection cleanly between requests (the normal end of a keep-alive
/// session). `idle_interrupt` is polled while waiting for the *first*
/// byte: returning `true` abandons the wait (used for server shutdown) —
/// once a request has started arriving, it is read to completion.
pub fn read_request(
    rd: &mut impl BufRead,
    mut idle_interrupt: impl FnMut() -> bool,
) -> io::Result<Option<Request>> {
    // Wait for the first byte, tolerating read timeouts so the caller can
    // check for shutdown while the connection idles between requests.
    loop {
        match rd.fill_buf() {
            Ok([]) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if idle_interrupt() {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    let mut line = String::new();
    read_line_retrying(rd, &mut line)?;
    if line.trim().is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(bad_data("malformed request line"));
    }

    let mut head_bytes = line.len();
    let mut content_length: usize = 0;
    let mut keep_alive = true; // HTTP/1.1 default
    loop {
        let mut header = String::new();
        read_line_retrying(rd, &mut header)?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad_data("request head too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad_data("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| bad_data("bad content-length"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(bad_data("request body too large"));
                }
            }
            "connection" if value.eq_ignore_ascii_case("close") => {
                keep_alive = false;
            }
            "transfer-encoding" => {
                return Err(bad_data("request transfer-encoding not supported"));
            }
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    read_exact_retrying(rd, &mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad_data("request body is not UTF-8"))?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// `read_line` that rides through read timeouts (the caller arms one on
/// the socket so *idle* connections stay interruptible; mid-request we
/// just keep reading).
fn read_line_retrying(rd: &mut impl BufRead, buf: &mut String) -> io::Result<()> {
    loop {
        match rd.read_line(buf) {
            Ok(_) => return Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
}

fn read_exact_retrying(rd: &mut impl BufRead, mut buf: &mut [u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match rd.read(buf) {
            Ok(0) => return Err(bad_data("request body truncated")),
            Ok(n) => buf = &mut buf[n..],
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a complete response with an explicit content type and
/// `Content-Length` (the `/metrics` endpoint speaks Prometheus text
/// exposition, not JSON).
pub fn respond_text(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    w.flush()
}

/// Write a complete JSON response with `Content-Length`.
pub fn respond_json(w: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    respond_text(w, status, "application/json", body)
}

/// Write an error response: `{"error": "<message>"}`.
pub fn respond_error(w: &mut impl Write, status: u16, message: &str) -> io::Result<()> {
    let body = format!("{{\"error\":\"{}\"}}", telemetry::json::escape(message));
    respond_json(w, status, &body)
}

/// A chunked (streaming) response in progress: the `watch` endpoint sends
/// one JSON document per chunk as epochs are published, then terminates
/// the stream. Dropping without [`ChunkedResponse::finish`] leaves the
/// stream unterminated — the client sees a truncated transfer (which is
/// the honest signal for a mid-stream server error).
pub struct ChunkedResponse<W: Write> {
    w: W,
}

impl<W: Write> ChunkedResponse<W> {
    /// Write the response head and switch to chunked transfer encoding.
    pub fn begin(mut w: W, status: u16) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\n\r\n",
            reason(status),
        )?;
        w.flush()?;
        Ok(ChunkedResponse { w })
    }

    /// Send one chunk (flushed immediately — watchers see each update as
    /// it is published, not when the stream ends).
    pub fn chunk(&mut self, data: &str) -> io::Result<()> {
        write!(self.w, "{:x}\r\n{data}\r\n", data.len())?;
        self.w.flush()
    }

    /// Terminate the stream (zero-length chunk).
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// Decode a chunked response body from `rd` (headers already consumed).
/// Returns the concatenated chunks. Used by the test/bench client.
pub fn read_chunked(rd: &mut impl BufRead) -> io::Result<String> {
    let mut out = String::new();
    loop {
        let mut size_line = String::new();
        read_line_retrying(rd, &mut size_line)?;
        let size =
            usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad_data("bad chunk size"))?;
        let mut chunk = vec![0u8; size + 2]; // data + CRLF
        read_exact_retrying(rd, &mut chunk)?;
        if size == 0 {
            return Ok(out);
        }
        chunk.truncate(size);
        out.push_str(std::str::from_utf8(&chunk).map_err(|_| bad_data("chunk is not UTF-8"))?);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_with_body_and_keep_alive() {
        let raw = "POST /eval HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let mut rd = BufReader::new(raw.as_bytes());
        let req = read_request(&mut rd, || false).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/eval");
        assert_eq!(req.body, "hello");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_clears_keep_alive_and_eof_is_none() {
        let raw = "GET /health HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut rd = BufReader::new(raw.as_bytes());
        let req = read_request(&mut rd, || false).unwrap().unwrap();
        assert!(!req.keep_alive);
        assert!(read_request(&mut rd, || false).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            let mut rd = BufReader::new(raw.as_bytes());
            assert!(read_request(&mut rd, || false).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let mut out = Vec::new();
        respond_json(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        respond_error(&mut out, 400, "bad \"thing\"").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("{\"error\":\"bad \\\"thing\\\"\"}"));
    }

    #[test]
    fn chunked_stream_round_trips() {
        let mut wire = Vec::new();
        let mut resp = ChunkedResponse::begin(&mut wire, 200).unwrap();
        resp.chunk("{\"a\":1}\n").unwrap();
        resp.chunk("{\"b\":2}\n").unwrap();
        resp.finish().unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        let body_at = text.find("\r\n\r\n").unwrap() + 4;
        let mut rd = BufReader::new(&wire[body_at..]);
        let decoded = read_chunked(&mut rd).unwrap();
        assert_eq!(decoded, "{\"a\":1}\n{\"b\":2}\n");
    }
}
