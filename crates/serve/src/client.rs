//! A minimal keep-alive HTTP/1.1 client for the bench harness and the
//! integration tests — one persistent connection per client, blocking
//! request/response, chunked-response decoding for `watch` streams.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use crate::http;

/// One keep-alive connection to the query service.
pub struct HttpClient {
    wr: TcpStream,
    rd: BufReader<TcpStream>,
}

/// A decoded response: status code and body (chunked bodies are
/// concatenated; the `watch` stream sends one JSON document per line).
#[derive(Clone, Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub body: String,
}

impl HttpClient {
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let wr = TcpStream::connect(addr)?;
        wr.set_nodelay(true).ok();
        let rd = BufReader::new(wr.try_clone()?);
        Ok(HttpClient { wr, rd })
    }

    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, "")
    }

    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", path, body)
    }

    /// Send one request and read the full response (including draining a
    /// chunked stream to its terminal chunk).
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
        write!(
            self.wr,
            "{method} {path} HTTP/1.1\r\nHost: probdb\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.wr.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let mut status_line = String::new();
        self.rd.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
        let mut content_length: Option<usize> = None;
        let mut chunked = false;
        loop {
            let mut header = String::new();
            self.rd.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            let Some((name, value)) = header.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().ok();
            } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            }
        }
        let body = if chunked {
            http::read_chunked(&mut self.rd)?
        } else {
            let len = content_length.unwrap_or(0);
            let mut buf = vec![0u8; len];
            io::Read::read_exact(&mut self.rd, &mut buf)?;
            String::from_utf8(buf)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?
        };
        Ok(HttpResponse { status, body })
    }
}
