//! Property-based tests (proptest): randomized databases — and for the
//! lineage layer, randomized DNFs — must keep every cross-engine invariant.

use probdb::prelude::{
    brute_force_probability, eval_inversion_free, eval_recurrence, exact_probability, karp_luby,
    lineage_of, parse_query, ProbDb, Value, Vocabulary,
};
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: a random tuple-independent database over `R/1, S/2` with the
/// given domain size.
type RsRows = (Vec<(u64, f64)>, Vec<(u64, u64, f64)>);

fn arb_rs_db(domain: u64) -> impl Strategy<Value = RsRows> {
    let r = proptest::collection::vec((0..domain, 0.05f64..0.95), 1..5);
    let s = proptest::collection::vec((0..domain, 0..domain, 0.05f64..0.95), 1..7);
    (r, s)
}

fn build_db(voc: &Vocabulary, r_rows: &[(u64, f64)], s_rows: &[(u64, u64, f64)]) -> ProbDb {
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let mut db = ProbDb::new(voc.clone());
    for &(a, p) in r_rows {
        db.insert(r, vec![Value(a)], p);
    }
    for &(a, b, p) in s_rows {
        db.insert(s, vec![Value(a), Value(b)], p);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Eq. 3 recurrence equals possible-world enumeration on q_hier.
    #[test]
    fn recurrence_is_exact_on_q_hier((r_rows, s_rows) in arb_rs_db(3)) {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let db = build_db(&voc, &r_rows, &s_rows);
        let p_rec = eval_recurrence(&db, &q).unwrap();
        let p_bf = brute_force_probability(&db, &q);
        prop_assert!((p_rec - p_bf).abs() < 1e-9, "{p_rec} vs {p_bf}");
    }

    /// The safe evaluator is exact on a self-join query (the §1.1 example).
    #[test]
    fn safe_eval_is_exact_on_selfjoin((r_rows, s_rows) in arb_rs_db(3)) {
        let mut voc = Vocabulary::new();
        // Reuse R as the "T" tail too: R(x), S(x,y), S(x2,y2), R(x2) has the
        // same inversion-free shape with an extra self-join on R.
        let q = parse_query(&mut voc, "R(x), S(x,y), S(x2,y2), R(x2)").unwrap();
        let db = build_db(&voc, &r_rows, &s_rows);
        let p_safe = eval_inversion_free(&db, &q).unwrap();
        let p_bf = brute_force_probability(&db, &q);
        prop_assert!((p_safe - p_bf).abs() < 1e-8, "{p_safe} vs {p_bf}");
    }

    /// Lineage compilation is exact on the #P-hard H_0 (exactness is about
    /// the instance, not the query class).
    #[test]
    fn lineage_is_exact_on_h0((r_rows, s_rows) in arb_rs_db(3)) {
        let mut voc = Vocabulary::new();
        // H_0 with R doubling as T: R(x), S(x,y), S(x2,y2), R(y2) — note the
        // tail variable is the *second* S attribute: an inversion.
        let q = parse_query(&mut voc, "R(x), S(x,y), S(x2,y2), R(y2)").unwrap();
        let db = build_db(&voc, &r_rows, &s_rows);
        let p_lin = exact_probability(&lineage_of(&db, &q), &db.prob_vector());
        let p_bf = brute_force_probability(&db, &q);
        prop_assert!((p_lin - p_bf).abs() < 1e-9, "{p_lin} vs {p_bf}");
    }

    /// Probabilities are probabilities.
    #[test]
    fn probabilities_stay_in_unit_interval((r_rows, s_rows) in arb_rs_db(4)) {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let db = build_db(&voc, &r_rows, &s_rows);
        let p = eval_recurrence(&db, &q).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    /// Monotonicity: raising one tuple's probability cannot lower the
    /// probability of a negation-free query.
    #[test]
    fn monotone_in_tuple_probability(
        (r_rows, s_rows) in arb_rs_db(3),
        bump in 0usize..4,
    ) {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let db = build_db(&voc, &r_rows, &s_rows);
        let p0 = eval_recurrence(&db, &q).unwrap();
        // Bump one S tuple to certainty.
        let idx = bump % s_rows.len();
        let s = db.voc.find_relation("S").unwrap();
        let (a, b, _) = s_rows[idx];
        let db2 = db.conditioned(s, &[Value(a), Value(b)], 1.0);
        let p1 = eval_recurrence(&db2, &q).unwrap();
        prop_assert!(p1 + 1e-12 >= p0, "{p1} < {p0}");
    }

    /// Karp–Luby is within 6σ of the exact answer (flaky-free: fixed seed
    /// per case via the instance hash).
    #[test]
    fn karp_luby_confidence_interval((r_rows, s_rows) in arb_rs_db(3)) {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y), S(x2,y2), R(y2)").unwrap();
        let db = build_db(&voc, &r_rows, &s_rows);
        let dnf = lineage_of(&db, &q);
        let exact = exact_probability(&dnf, &db.prob_vector());
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let est = karp_luby(&dnf, &db.prob_vector(), 60_000, &mut rng);
        prop_assert!(
            (est.estimate - exact).abs() <= 6.0 * est.std_error + 1e-9,
            "estimate {} vs exact {exact} (se {})",
            est.estimate,
            est.std_error
        );
    }
}
