//! Invariance properties of the query-side algorithms: classification,
//! minimization, and plan compilation are *semantic* — they must not care
//! how a query is spelled. Random queries are re-spelled (variables
//! bijectively renamed, atoms permuted) and every analysis must return the
//! same verdict; minimization must return an equivalent query.

use dichotomy::{classify, Complexity};
use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Build a random query over a small vocabulary, self-joins included.
fn random_query(rng: &mut StdRng, voc: &mut Vocabulary) -> Query {
    let rels = [("R", 1usize), ("S", 2), ("T", 1), ("U", 2)];
    let n_atoms = rng.gen_range(1..=3);
    let n_vars = rng.gen_range(1..=3u32);
    let parts: Vec<String> = (0..n_atoms)
        .map(|_| {
            let (name, arity) = rels[rng.gen_range(0..rels.len())];
            let args: Vec<String> = (0..arity)
                .map(|_| {
                    if rng.gen_bool(0.1) {
                        "1".to_string()
                    } else {
                        format!("v{}", rng.gen_range(0..n_vars))
                    }
                })
                .collect();
            format!("{name}({})", args.join(","))
        })
        .collect();
    parse_query(voc, &parts.join(", ")).unwrap()
}

/// Re-spell: permute atoms and bijectively rename variables.
fn respell(q: &Query, rng: &mut StdRng) -> Query {
    let mut atoms = q.atoms.clone();
    atoms.shuffle(rng);
    let shuffled = Query::new(atoms, q.preds.clone());
    // Bijective renaming: shift ids by a random offset (stays injective).
    let offset = rng.gen_range(10..50u32);
    shuffled.rename_apart(offset)
}

fn verdict_kind(c: &Complexity) -> &'static str {
    if c.is_ptime() {
        "ptime"
    } else {
        "hard"
    }
}

#[test]
fn classification_is_invariant_under_respelling() {
    let mut rng = StdRng::seed_from_u64(0x1BADB002);
    let mut checked = 0;
    for round in 0..50u64 {
        let mut voc = Vocabulary::new();
        let q = random_query(&mut rng, &mut voc);
        let Ok(c1) = classify(&q) else { continue };
        let q2 = respell(&q, &mut rng);
        let Ok(c2) = classify(&q2) else { continue };
        assert_eq!(
            verdict_kind(&c1.complexity),
            verdict_kind(&c2.complexity),
            "round {round}: {q:?} vs respelled {q2:?}: {} vs {}",
            c1.complexity,
            c2.complexity
        );
        checked += 1;
    }
    assert!(checked >= 40, "only {checked} queries checked");
}

#[test]
fn minimization_returns_an_equivalent_query() {
    let mut rng = StdRng::seed_from_u64(0x31313);
    for round in 0..60u64 {
        let mut voc = Vocabulary::new();
        let q = random_query(&mut rng, &mut voc);
        let Some(qn) = q.normalize() else { continue };
        let Some(m) = cq::minimize(&q) else {
            // Unsatisfiable: normalize must agree.
            continue;
        };
        assert!(
            cq::equivalent(&qn, &m),
            "round {round}: {q:?} not equivalent to its minimization {m:?}"
        );
        assert!(
            m.atoms.len() <= qn.atoms.len(),
            "round {round}: minimization grew {q:?}"
        );
        // Idempotence.
        let m2 = cq::minimize(&m).expect("minimal query stays satisfiable");
        assert_eq!(
            m2.atoms.len(),
            m.atoms.len(),
            "round {round}: minimize not idempotent on {m:?}"
        );
    }
}

#[test]
fn plan_compilation_is_invariant_under_respelling() {
    let mut rng = StdRng::seed_from_u64(0xACCE);
    let mut both_built = 0;
    for round in 0..50u64 {
        let mut voc = Vocabulary::new();
        // Self-join-free by construction so plans usually exist.
        let n_atoms = rng.gen_range(1..=3);
        let n_vars = rng.gen_range(1..=3u32);
        let parts: Vec<String> = (0..n_atoms)
            .map(|i| {
                let arity = rng.gen_range(1..=2usize);
                let args: Vec<String> = (0..arity)
                    .map(|_| format!("v{}", rng.gen_range(0..n_vars)))
                    .collect();
                format!("N{i}({})", args.join(","))
            })
            .collect();
        let q = parse_query(&mut voc, &parts.join(", ")).unwrap();
        let q2 = respell(&q, &mut rng);
        let p1 = build_plan(&q);
        let p2 = build_plan(&q2);
        assert_eq!(
            p1.is_ok(),
            p2.is_ok(),
            "round {round}: {q:?} vs {q2:?} disagree on compilability"
        );
        if let (Ok(p1), Ok(p2)) = (&p1, &p2) {
            both_built += 1;
            // The plans must be structurally identical up to renaming:
            // same operator counts and depth.
            assert_eq!(p1.size(), p2.size(), "round {round}: {q:?}");
            assert_eq!(p1.depth(), p2.depth(), "round {round}: {q:?}");
        }
    }
    assert!(both_built >= 30, "only {both_built} plans compared");
}

#[test]
fn evaluation_is_invariant_under_respelling() {
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    let mut rng = StdRng::seed_from_u64(0xE7A1);
    let engine = Engine::new();
    for round in 0..20u64 {
        let mut voc = Vocabulary::new();
        let q = random_query(&mut rng, &mut voc);
        let Ok(c) = classify(&q) else { continue };
        if !c.complexity.is_ptime() {
            continue;
        }
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 3,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let q2 = respell(&q, &mut rng);
        let p1 = engine
            .evaluate(&db, &q, Strategy::Auto)
            .unwrap()
            .probability;
        let p2 = engine
            .evaluate(&db, &q2, Strategy::Auto)
            .unwrap()
            .probability;
        assert!(
            (p1 - p2).abs() < 1e-9,
            "round {round}: {q:?} gave {p1}, respelled {q2:?} gave {p2}"
        );
    }
}
