//! Cross-thread aggregation audit for the telemetry registry and the
//! executor's `OpCounters` (the PR-9 serving layer records into both from
//! many workers at once). The audit's conclusion, pinned here as a
//! stress test: every registry recording path is a single atomic RMW
//! (`fetch_add` on counters, histogram bucket/count/sum, `fetch_max` on
//! gauges) — no read-modify-write is split across non-atomic steps — and
//! `OpCounters` is value-typed per task, merged by `absorb` in a single
//! owner thread, so totals are exact, not approximate. If any of these
//! ever regresses to a torn `load; add; store`, the exact-total
//! assertions below become flaky under contention.

use std::sync::Arc;

use probdb::prelude::OpCounters;

const THREADS: usize = 8;
const OPS: u64 = 20_000;

#[test]
fn registry_counters_and_histograms_count_exactly_under_contention() {
    let reg = telemetry::registry();
    let counter = reg.counter("test.concurrency.counter");
    let histogram = reg.histogram("test.concurrency.histogram");
    let gauge = reg.gauge("test.concurrency.gauge");
    let base_count = counter.get();
    let base_histo = histogram.count();
    let base_sum = histogram.sum_ns();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = Arc::clone(&counter);
            let histogram = Arc::clone(&histogram);
            let gauge = Arc::clone(&gauge);
            scope.spawn(move || {
                for i in 0..OPS {
                    counter.incr();
                    histogram.record_ns(7);
                    gauge.record_max(t as u64 * OPS + i);
                }
            });
        }
    });

    let n = THREADS as u64 * OPS;
    assert_eq!(counter.get() - base_count, n, "counter lost increments");
    assert_eq!(histogram.count() - base_histo, n, "histogram lost samples");
    assert_eq!(
        histogram.sum_ns() - base_sum,
        7 * n,
        "histogram sum drifted"
    );
    assert_eq!(gauge.get(), THREADS as u64 * OPS - 1, "gauge max torn");
}

#[test]
fn registry_handles_are_shared_not_duplicated() {
    // Two lookups under the same name must alias one atomic cell —
    // otherwise per-worker `Arc` caches (the serving layer's pattern)
    // would fork the count.
    let reg = telemetry::registry();
    let a = reg.counter("test.concurrency.alias");
    let b = reg.counter("test.concurrency.alias");
    let before = a.get();
    b.add(3);
    assert_eq!(a.get(), before + 3);
}

#[test]
fn op_counters_absorb_is_lossless_across_task_partitions() {
    // OpCounters are value-typed: each parallel task fills its own, and
    // the owner absorbs them in task order. Absorbing any partition of
    // the same per-task counters must reproduce the serial total exactly.
    let per_task: Vec<OpCounters> = (0..16)
        .map(|i| OpCounters {
            scans: i,
            index_scans: i * 2,
            rows_scanned: i * 100,
            rows_pruned: i * 7,
            complement_scans: i % 3,
            complement_rows: i * 5,
            joins: i,
            joins_build_left: i / 2,
            join_rows: i * 11,
            groups: i * 3,
            shard_fanout: 4,
            ..OpCounters::default()
        })
        .collect();

    let mut serial = OpCounters::default();
    for c in &per_task {
        serial.absorb(c);
    }

    for split in [1usize, 3, 5, 8] {
        let mut partitioned = OpCounters::default();
        let mut partials: Vec<OpCounters> = Vec::new();
        for chunk in per_task.chunks(split) {
            let mut part = OpCounters::default();
            for c in chunk {
                part.absorb(c);
            }
            partials.push(part);
        }
        for p in &partials {
            partitioned.absorb(p);
        }
        assert_eq!(
            partitioned, serial,
            "absorb lost counts when partitioned by {split}"
        );
    }
}
