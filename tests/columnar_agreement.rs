//! Columnar/row agreement: the columnar flat-buffer executor (PR 3) must
//! return **bit-for-bit** what the PR-2 row-at-a-time executor returns —
//! same rows, same order, same `f64` values — serially and at every
//! thread count, on random hierarchical self-join-free queries over
//! random databases, and through ranked (top-k) retrieval. The row
//! executor is preserved verbatim in `safeplan::rowref` as the oracle.

use probdb::prelude::{
    build_plan, par_execute, ParOptions, Pool, ProbDb, Query, Value, Var, Vocabulary,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safeplan::rowref::{row_execute, row_ranked_probabilities, RowRelation};
use safeplan::{execute, ranked_probabilities, ProbRelation};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Assert the columnar relation is bit-for-bit the row relation.
fn assert_same(col: &ProbRelation<f64>, row: &RowRelation<f64>, ctx: &str) {
    assert_eq!(col.cols(), row.cols.as_slice(), "{ctx}: schema");
    assert_eq!(col.len(), row.rows.len(), "{ctx}: row count");
    for (i, (vals, p)) in row.rows.iter().enumerate() {
        assert_eq!(col.row(i), vals.as_slice(), "{ctx}: row {i} values");
        assert_eq!(
            col.prob(i).to_bits(),
            p.to_bits(),
            "{ctx}: row {i} probability bits ({} vs {p})",
            col.prob(i)
        );
    }
}

/// Random hierarchical self-join-free query: a forest of hierarchy trees
/// where every atom's variables are a root-to-node path, each atom over a
/// fresh relation — exactly the fragment the extensional compiler accepts.
fn random_hierarchical_query(rng: &mut StdRng, voc: &mut Vocabulary) -> Query {
    fn grow(
        rng: &mut StdRng,
        voc: &mut Vocabulary,
        atoms: &mut Vec<cq::Atom>,
        path: &mut Vec<Var>,
        next_var: &mut u32,
        depth: u32,
    ) {
        for _ in 0..rng.gen_range(1..=2u32) {
            let name = format!("P{}", atoms.len());
            let rel = voc.relation(&name, path.len()).unwrap();
            let args = path.iter().map(|&v| cq::Term::Var(v)).collect();
            atoms.push(cq::Atom::new(rel, args));
        }
        if depth < 3 {
            for _ in 0..rng.gen_range(0..=2u32) {
                path.push(Var(*next_var));
                *next_var += 1;
                grow(rng, voc, atoms, path, next_var, depth + 1);
                path.pop();
            }
        }
    }
    let mut atoms = Vec::new();
    let mut next_var = 0u32;
    for _ in 0..rng.gen_range(1..=2u32) {
        let mut path = vec![Var(next_var)];
        next_var += 1;
        grow(rng, voc, &mut atoms, &mut path, &mut next_var, 1);
    }
    Query::new(atoms, vec![])
}

fn random_db(q: &Query, voc: &Vocabulary, rng: &mut StdRng) -> ProbDb {
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    let opts = RandomDbOptions {
        domain: 4,
        tuples_per_relation: 20,
        prob_range: (0.05, 0.95),
    };
    random_db_for_query(q, voc, opts, rng)
}

/// Columnar executor — serial and at every thread count — against the row
/// oracle, on random hierarchical SJF queries and databases.
#[test]
fn columnar_matches_row_executor_on_random_hierarchical_queries() {
    let mut rng = StdRng::seed_from_u64(0xC0_1AB5);
    for case in 0..25 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let plan = build_plan(&q).unwrap();
        for round in 0..2 {
            let db = random_db(&q, &voc, &mut rng);
            let probs = db.prob_vector();
            let oracle = row_execute(&db, &probs, &plan);
            let serial = execute(&db, &probs, &plan);
            assert_same(
                &serial,
                &oracle,
                &format!("case {case} round {round} serial: {}", q.display(&voc)),
            );
            for threads in THREADS {
                let pool = Pool::with_grain(threads, 3);
                let par = par_execute(&db, &probs, &plan, &pool);
                assert_same(
                    &par,
                    &oracle,
                    &format!(
                        "case {case} round {round} threads {threads}: {}",
                        q.display(&voc)
                    ),
                );
            }
        }
    }
}

/// Ranked retrieval: the columnar batched ranked path (serial and
/// partitioned across workers) returns the row oracle's exact answer list
/// — tuples, probabilities, and order — so any top-k cut is identical.
#[test]
fn columnar_ranked_top_k_matches_row_executor() {
    let mut rng = StdRng::seed_from_u64(0x70_9B5);
    for case in 0..10 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let vars = q.vars();
        let head = vec![vars[rng.gen_range(0..vars.len())]];
        let Ok(plan) = safeplan::build_ranked_plan(&q, &head) else {
            continue;
        };
        let db = random_db(&q, &voc, &mut rng);
        let probs = db.prob_vector();
        let oracle = row_ranked_probabilities(&db, &probs, &plan, &head);
        let serial = ranked_probabilities(&db, &probs, &plan, &head);
        assert_eq!(oracle, serial, "case {case} serial ranked");
        for threads in THREADS {
            let par = safeplan::par_ranked_probabilities(
                &db,
                &probs,
                &plan,
                &head,
                ParOptions::with_grain(threads, 3),
            );
            assert_eq!(oracle, par, "case {case} ranked threads {threads}");
        }
        // The top-k cut (sorted by probability desc, ties by tuple) reads
        // off identical lists, so it is identical by construction; pin the
        // k=3 prefix anyway.
        let mut by_p = oracle.clone();
        by_p.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        let mut col_by_p = serial;
        col_by_p.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        assert_eq!(
            by_p.iter().take(3).collect::<Vec<_>>(),
            col_by_p.iter().take(3).collect::<Vec<_>>(),
            "case {case} top-3"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for random R/1, S/2 databases (duplicate inserts allowed —
    /// they exercise the overwrite path of the hash-keyed content index),
    /// the columnar executor is bit-identical to the row oracle on q_hier,
    /// serially and at every thread count.
    #[test]
    fn columnar_is_bit_identical_on_random_dbs(
        r_rows in proptest::collection::vec((0u64..4, 0.05f64..0.95), 1..12),
        s_rows in proptest::collection::vec((0u64..4, 0u64..4, 0.05f64..0.95), 1..16),
    ) {
        let mut voc = Vocabulary::new();
        let q = probdb::prelude::parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        for &(a, p) in &r_rows {
            db.insert(r, vec![Value(a)], p);
        }
        for &(a, b, p) in &s_rows {
            db.insert(s, vec![Value(a), Value(b)], p);
        }
        let plan = build_plan(&q).unwrap();
        let probs = db.prob_vector();
        let oracle = row_execute(&db, &probs, &plan);
        let serial = execute(&db, &probs, &plan);
        prop_assert_eq!(serial.len(), oracle.rows.len());
        prop_assert_eq!(serial.scalar().to_bits(), oracle.scalar().to_bits());
        for threads in THREADS {
            let pool = Pool::with_grain(threads, 2);
            let par = par_execute(&db, &probs, &plan, &pool);
            prop_assert_eq!(par.scalar().to_bits(), oracle.scalar().to_bits(),
                "threads {}", threads);
        }
    }
}
