//! Concurrent `ViewHandle` reads under writer churn (the serving
//! layer's `watch` substrate): readers sharing one subscription across
//! epoch snapshots must always answer from **the exact epoch they were
//! handed** — bit-for-bit the serial replay of that version — whether the
//! read refreshed the view forward, answered without refreshing, or had
//! to rebuild because the handle had already synced past the reader's
//! (older) snapshot. Never a stale or partial answer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCHES: usize = 20;

#[test]
fn shared_view_reads_answer_from_a_consistent_epoch() {
    let mut rng = StdRng::seed_from_u64(0x51EE9);
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x, y)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();

    let mut db = ProbDb::new(voc.clone());
    let mut seedb = DeltaBatch::new();
    for _ in 0..25 {
        let x = rng.gen_range(0..10u64);
        seedb.insert(r, vec![Value(x)], rng.gen_range(0.05..0.95));
        seedb.insert(
            s,
            vec![Value(x), Value(rng.gen_range(0..10u64))],
            rng.gen_range(0.05..0.95),
        );
    }
    db.apply(&seedb);

    let batches: Vec<DeltaBatch> = (0..BATCHES)
        .map(|_| {
            let mut b = DeltaBatch::new();
            for _ in 0..rng.gen_range(1..=4usize) {
                let x = rng.gen_range(0..10u64);
                if rng.gen_bool(0.3) {
                    b.delete(r, vec![Value(x)]);
                } else {
                    b.update(r, vec![Value(x)], rng.gen_range(0.05..0.95));
                }
            }
            b
        })
        .collect();

    // Serial oracle: version → probability bits.
    let oracle_engine = Engine::new();
    let mut oracle = std::collections::HashMap::new();
    let mut replay = db.clone();
    let ev = oracle_engine.evaluate(&replay, &q, Strategy::Auto).unwrap();
    oracle.insert(replay.version(), ev.probability.to_bits());
    for b in &batches {
        replay.apply(b);
        let ev = oracle_engine.evaluate(&replay, &q, Strategy::Auto).unwrap();
        oracle.insert(replay.version(), ev.probability.to_bits());
    }

    // One shared incremental subscription, four readers, one writer.
    let store = EpochStore::new(db);
    let engine = Engine::new();
    let first = store.snapshot();
    let view = Arc::new(engine.subscribe(&first, &q).unwrap());
    assert!(
        view.is_incremental(),
        "test needs the delta-maintained path"
    );
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mut reader = store.reader();
            let view = Arc::clone(&view);
            let done = Arc::clone(&done);
            let oracle = &oracle;
            handles.push(scope.spawn(move || {
                let mut observations = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    let version = snap.version();
                    let reading = view.read(&snap).unwrap();
                    // The reading must reflect exactly the snapshot's
                    // epoch — not whatever epoch the shared view last
                    // synced to.
                    assert_eq!(
                        reading.version, version,
                        "view answered from a different epoch than the snapshot"
                    );
                    let expected = oracle
                        .get(&version)
                        .unwrap_or_else(|| panic!("unpublished version {version}"));
                    assert_eq!(
                        reading.evaluation.probability.to_bits(),
                        *expected,
                        "stale or partial view read at version {version}"
                    );
                    observations += 1;
                }
                observations
            }));
        }
        for b in &batches {
            store.apply(b);
            std::thread::sleep(std::time::Duration::from_micros(400));
        }
        done.store(true, Ordering::Relaxed);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "readers never observed anything");
    });

    // After the churn the view still agrees with a cold evaluation of the
    // final epoch.
    let last = store.snapshot();
    let reading = view.read(&last).unwrap();
    assert_eq!(
        reading.evaluation.probability.to_bits(),
        oracle[&last.version()],
    );
}
