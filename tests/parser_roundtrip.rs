//! Display/parse round-trip: rendering a query through the vocabulary and
//! re-parsing it must give back the same query up to variable renaming —
//! the property that makes the CLI, the text fixtures, and the examples
//! trustworthy mirrors of the in-memory representation.

use probdb::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// Random query text assembled from a small grammar (relations R/1, S/2,
/// U/3; variables v0..v3; constants; `<`/`=`/`!=` predicates; negation).
fn arb_query_text() -> impl proptest::strategy::Strategy<Value = String> {
    let atom = (
        0..3usize,
        proptest::collection::vec(0..5u32, 1..=3),
        any::<bool>(),
    )
        .prop_map(|(rel, args, neg)| {
            let (name, arity) = [("R", 1), ("S", 2), ("U", 3)][rel];
            let rendered: Vec<String> = (0..arity)
                .map(|i| {
                    let a = args[i % args.len()];
                    if a == 4 {
                        "7".to_string() // constant
                    } else {
                        format!("v{a}")
                    }
                })
                .collect();
            format!(
                "{}{}({})",
                if neg { "not " } else { "" },
                name,
                rendered.join(",")
            )
        });
    proptest::collection::vec(atom, 1..4).prop_map(|atoms| atoms.join(", "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn display_parse_roundtrip(text in arb_query_text()) {
        let mut voc = Vocabulary::new();
        let Ok(q) = parse_query(&mut voc, &text) else {
            // Range-restriction or arity clashes: fine, nothing to check.
            return Ok(());
        };
        let rendered = q.display(&voc);
        let mut voc2 = voc.clone();
        let q2 = parse_query(&mut voc2, &rendered)
            .unwrap_or_else(|e| panic!("rendered {rendered:?} failed to parse: {e}"));
        // Compare up to variable renaming.
        prop_assert_eq!(
            q.compact_vars().cache_key(),
            q2.compact_vars().cache_key(),
            "roundtrip changed the query: {:?} -> {} -> {:?}",
            q, rendered, q2
        );
        prop_assert_eq!(q.atoms.len(), q2.atoms.len());
        prop_assert_eq!(q.preds.len(), q2.preds.len());
    }

    #[test]
    fn classification_survives_roundtrip(text in arb_query_text()) {
        let mut voc = Vocabulary::new();
        let Ok(q) = parse_query(&mut voc, &text) else { return Ok(()); };
        let Ok(c1) = classify(&q) else { return Ok(()); };
        let rendered = q.display(&voc);
        let mut voc2 = voc.clone();
        let q2 = parse_query(&mut voc2, &rendered).expect("rendered query parses");
        let c2 = classify(&q2).expect("roundtripped query classifies");
        prop_assert_eq!(
            c1.complexity.is_ptime(),
            c2.complexity.is_ptime(),
            "classification changed across roundtrip of {:?}",
            q
        );
    }
}
