//! Integration round-trips for the hardness reductions: model counts of
//! random bipartite 2DNF formulas recovered through each reduction pipeline
//! must equal direct counts.

use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn lineage_oracle(db: &ProbDb, q: &Query) -> f64 {
    exact_probability(&lineage_of(db, q), &db.prob_vector())
}

#[test]
fn pattern_reduction_round_trips() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut voc = Vocabulary::new();
    let pattern = parse_query(&mut voc, "R(x), S(x,y), T(y)").unwrap();
    let vars = pattern.vars();
    for _ in 0..6 {
        let phi = Bipartite2Dnf::random(3, 3, 4, &mut rng);
        assert_eq!(
            count_via_pattern(&pattern, vars[0], vars[1], &phi, &voc),
            phi.count_models()
        );
    }
}

#[test]
fn hk_reduction_round_trips() {
    let mut rng = StdRng::seed_from_u64(37);
    for k in [2usize, 3] {
        let phi = Bipartite2Dnf::random(2, 2, 3, &mut rng);
        assert_eq!(
            count_via_hk(&phi, k, &lineage_oracle),
            phi.count_models(),
            "k={k}"
        );
    }
}

#[test]
fn hk_queries_are_hard_patterns_are_hard() {
    // The queries the reductions target really sit on the hard side.
    let mut voc = Vocabulary::new();
    for text in [
        "R(x), S(x,y), T(y)",
        "R(x), S0(x,y), S0(u,v), S1(u,v), S1(x2,y2), T(y2)",
    ] {
        let q = parse_query(&mut voc, text).unwrap();
        assert!(!classify(&q).unwrap().complexity.is_ptime(), "{text}");
    }
}

#[test]
fn reduction_instance_probability_equals_formula_probability() {
    // With non-uniform marginals, P(pattern on instance) = P(Φ).
    let mut rng = StdRng::seed_from_u64(41);
    let mut voc = Vocabulary::new();
    let pattern = parse_query(&mut voc, "R(x), S(x,y), T(y)").unwrap();
    let vars = pattern.vars();
    for _ in 0..4 {
        let phi = Bipartite2Dnf::random(2, 3, 3, &mut rng);
        let xp: Vec<f64> = (0..phi.m).map(|i| 0.2 + 0.1 * i as f64).collect();
        let yp: Vec<f64> = (0..phi.n).map(|j| 0.3 + 0.1 * j as f64).collect();
        let red = reductions::non_hierarchical::build_pattern_reduction(
            &pattern, vars[0], vars[1], &phi, &xp, &yp, &voc,
        );
        let p_query = lineage_oracle(&red.db, &red.query);
        let p_phi = phi.probability(&xp, &yp);
        assert!((p_query - p_phi).abs() < 1e-10);
    }
}
