//! Span tracing end-to-end: a traced threaded + sharded evaluation emits a
//! well-formed span forest (named phases, per-worker lanes, children nested
//! inside parents) and exports as parseable Chrome trace-event JSON; an
//! incremental refresh and a Monte-Carlo run contribute their own phases.
//!
//! The span sink and the enabled flag are process-global, so every test
//! here serialises on one lock and drains the sink before starting.

use probdb::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// A hierarchical star: `R(x), S(x,y), T(x,z)` is safe (extensional), so
/// traced runs exercise the planner, the DAG scheduler, and the operator
/// kernels rather than falling back to sampling.
fn star_db(rels: u64, fanout: u64) -> (ProbDb, Query) {
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x,y), T(x,z)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let t = voc.find_relation("T").unwrap();
    let mut db = ProbDb::new(voc);
    for i in 0..rels {
        db.insert(r, vec![Value(i)], 0.3 + 0.4 * ((i % 7) as f64 / 7.0));
        for j in 0..fanout {
            let y = i * fanout + j;
            db.insert(s, vec![Value(i), Value(y)], 0.5);
            db.insert(
                t,
                vec![Value(i), Value(y)],
                0.25 + 0.5 * ((y % 5) as f64 / 5.0),
            );
        }
    }
    (db, q)
}

/// Every recorded span closes after it opens, its parent (when any) exists,
/// lives on the same lane, and fully contains it in time.
fn assert_well_formed(spans: &[telemetry::SpanRec]) {
    let by_id: HashMap<u64, &telemetry::SpanRec> = spans.iter().map(|s| (s.id, s)).collect();
    for s in spans {
        assert!(s.end_ns >= s.start_ns, "span ends before it starts: {s:?}");
        if s.parent == 0 {
            continue;
        }
        let p = by_id
            .get(&s.parent)
            .unwrap_or_else(|| panic!("dangling parent link: {s:?}"));
        assert_eq!(
            s.tid, p.tid,
            "child on a different lane than parent: {s:?} under {p:?}"
        );
        assert!(
            s.start_ns >= p.start_ns && s.end_ns <= p.end_ns,
            "child not nested inside parent: {s:?} under {p:?}"
        );
    }
}

#[test]
fn traced_evaluation_names_every_phase_and_nests() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    telemetry::clear_spans();

    let (db, q) = star_db(64, 4);
    let engine = Engine::with_options(0, 7, ExecOptions::with_tuning(4, 4));
    let ev = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    let spans = telemetry::take_spans();
    telemetry::set_enabled(false);

    assert!(ev.probability > 0.0);
    assert!(!spans.is_empty(), "tracing was on but nothing recorded");
    assert_well_formed(&spans);

    // The planner, engine, scheduler, and operator kernels all appear.
    for label in [
        "evaluate",
        "plan",
        "plan-compile",
        "classify",
        "execute",
        "scan",
        "join",
        "project",
    ] {
        assert!(
            spans.iter().any(|s| s.label == label),
            "no {label:?} span in {:?}",
            spans.iter().map(|s| &s.label).collect::<Vec<_>>()
        );
    }
    assert!(
        spans.iter().any(|s| s.label.starts_with("dag-task ")),
        "threads=4/shards=4 should schedule DAG tasks"
    );

    // The phase skeleton hangs together: classify under plan-compile under
    // plan under evaluate; operator kernels under a DAG task.
    let find = |label: &str| spans.iter().find(|s| s.label == label).unwrap();
    let evaluate = find("evaluate");
    let plan = find("plan");
    let compile = find("plan-compile");
    let classify = find("classify");
    assert_eq!(plan.parent, evaluate.id);
    assert_eq!(compile.parent, plan.id);
    assert_eq!(classify.parent, compile.id);
    let parent_of = |id: u64| spans.iter().find(|s| s.id == id);
    let scan = find("scan");
    let scan_parent = parent_of(scan.parent).expect("scan has a parent");
    assert!(
        scan_parent.label.starts_with("dag-task "),
        "operator kernels run inside scheduled tasks, got {:?}",
        scan_parent.label
    );
}

#[test]
fn traced_run_uses_one_lane_per_worker() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    telemetry::clear_spans();

    let (db, q) = star_db(256, 4);
    let engine = Engine::with_options(0, 7, ExecOptions::with_tuning(4, 4));
    let _ = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    let spans = telemetry::take_spans();
    telemetry::set_enabled(false);

    // Root spans (evaluate et al.) live on the calling thread's lane; DAG
    // tasks fan out across worker lanes. A lane is used by at most one
    // thread, so a span's id range never interleaves across lanes — here
    // we check the cheap invariant: the trace has more than one lane and
    // every lane's spans are disjoint-or-nested in time.
    let mut lanes: HashMap<u64, Vec<&telemetry::SpanRec>> = HashMap::new();
    for s in &spans {
        lanes.entry(s.tid).or_default().push(s);
    }
    assert!(
        lanes.len() > 1,
        "4 workers should populate more than one lane, got {}",
        lanes.len()
    );
    for (tid, lane) in &lanes {
        for (i, a) in lane.iter().enumerate() {
            for b in &lane[i + 1..] {
                let disjoint = a.end_ns <= b.start_ns || b.end_ns <= a.start_ns;
                let nested = (a.start_ns <= b.start_ns && b.end_ns <= a.end_ns)
                    || (b.start_ns <= a.start_ns && a.end_ns <= b.end_ns);
                assert!(
                    disjoint || nested,
                    "lane {tid}: partially overlapping spans {a:?} / {b:?}"
                );
            }
        }
    }
}

#[test]
fn chrome_trace_export_parses_and_names_lanes() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    telemetry::clear_spans();

    let (db, q) = star_db(64, 4);
    let engine = Engine::with_options(0, 7, ExecOptions::with_tuning(4, 4));
    let _ = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    let spans = telemetry::take_spans();
    telemetry::set_enabled(false);

    let json = telemetry::chrome_trace(&spans);
    let parsed = telemetry::json::parse(&json).expect("chrome trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");

    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    // One "M" metadata event names each lane worker-N; every span becomes
    // one "X" complete event carrying ts/dur and its id/parent args.
    let metas: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
        .collect();
    assert_eq!(metas.len(), tids.len(), "one thread_name per lane");
    for m in &metas {
        let name = m
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(|v| v.as_str())
            .expect("metadata name");
        assert!(name.starts_with("worker-"), "lane name {name:?}");
    }
    let xs: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .collect();
    assert_eq!(xs.len(), spans.len(), "one complete event per span");
    for x in &xs {
        assert!(x.get("ts").is_some() && x.get("dur").is_some());
        assert!(x.get("name").and_then(|v| v.as_str()).is_some());
        let args = x.get("args").expect("span args");
        assert!(args.get("id").and_then(|v| v.as_u64()).unwrap_or(0) > 0);
    }
}

#[test]
fn incremental_refresh_records_delta_phases() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    telemetry::clear_spans();

    // The two-atom join is the shape the incremental subsystem maintains
    // delta-by-delta (the star query degrades to re-execution).
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let mut db = ProbDb::new(voc);
    for i in 0..32u64 {
        db.insert(r, vec![Value(i)], 0.4);
        db.insert(s, vec![Value(i), Value(100 + i)], 0.5);
    }
    let engine = Engine::with_options(0, 7, ExecOptions::with_tuning(2, 2));
    let view = engine.subscribe(&db, &q).unwrap();
    assert!(view.is_incremental());
    let _ = view.read(&db).unwrap();
    telemetry::clear_spans(); // keep only the delta round

    // Mutate through the delta log (direct inserts clear it and force a
    // rebuild instead of delta propagation).
    let mut batch = pdb::DeltaBatch::new();
    batch
        .insert(r, vec![Value(9_999)], 0.5)
        .insert(s, vec![Value(9_999), Value(10_000)], 0.5);
    db.apply(&batch);
    let _ = view.read(&db).unwrap();
    let spans = telemetry::take_spans();
    telemetry::set_enabled(false);

    assert_well_formed(&spans);
    for label in [
        "view-read",
        "refresh",
        "coalesce",
        "propagate",
        "scan-delta",
    ] {
        assert!(
            spans.iter().any(|s| s.label == label),
            "no {label:?} span in {:?}",
            spans.iter().map(|s| &s.label).collect::<Vec<_>>()
        );
    }
}

#[test]
fn monte_carlo_sampling_records_rounds() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    telemetry::clear_spans();

    let (db, q) = star_db(8, 2);
    let engine = Engine::with_options(2_048, 7, ExecOptions::with_threads(2));
    let ev = engine
        .evaluate(&db, &q, Strategy::MonteCarlo { samples: 2_048 })
        .unwrap();
    let spans = telemetry::take_spans();
    telemetry::set_enabled(false);

    assert!(ev.std_error > 0.0, "forced sampling reports an error bar");
    assert!(
        spans.iter().any(|s| s.label.starts_with("mc-round ")),
        "sampling rounds should be traced: {:?}",
        spans.iter().map(|s| &s.label).collect::<Vec<_>>()
    );
}
