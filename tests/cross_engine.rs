//! Cross-engine integration tests: every evaluator in the workspace must
//! agree on the probability of every query, on randomized instances.
//!
//! The engines compared:
//! * brute-force possible-world enumeration (Eq. 2, the definition),
//! * exact lineage compilation (weighted model counting),
//! * the Eq. 3 recurrence (hierarchical, no self-joins),
//! * the inversion-free safe evaluator (§3.2 root recursion),
//! * the MystiQ-style engine in `Auto` mode.

use pdb::generators::{random_db_for_query, RandomDbOptions};
use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PTIME_QUERIES: &[&str] = &[
    "R(x), S(x,y)",
    "R(x), S(x,y), U(x,y,z)",
    "R(x), T(z,w)",
    "R(x), S(x,y), S(x2,y2), T(x2)",
    "P(x), R(x,y), R(x2,y2), S(x2)",
    "R(x,y), R(y,x)",
    "R(x,y,y,x), R(x,y,x,z)",
    "T(x), R(x,x,y), R(u,v,v)",
    "S(x,y), x < y",
    "R(1), S(1,y)",
];

const HARD_QUERIES: &[&str] = &[
    "R(x), S(x,y), T(y)",
    "R(x), S(x,y), S(x2,y2), T(y2)",
    "R(x,y), R(y,z)",
    "R(x), S(x,y), S(y,x)",
];

fn random_instance(text: &str, seed: u64, round: u64) -> (ProbDb, Query) {
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, text).unwrap();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(1_000_003).wrapping_add(round));
    let opts = RandomDbOptions {
        domain: 3,
        tuples_per_relation: 3,
        prob_range: (0.05, 0.95),
    };
    let db = random_db_for_query(&q, &voc, opts, &mut rng);
    (db, q)
}

#[test]
fn lineage_matches_brute_force_on_all_queries() {
    for (si, text) in PTIME_QUERIES.iter().chain(HARD_QUERIES).enumerate() {
        for round in 0..4 {
            let (db, q) = random_instance(text, si as u64, round);
            let p_lin = exact_probability(&lineage_of(&db, &q), &db.prob_vector());
            let p_bf = brute_force_probability(&db, &q);
            assert!(
                (p_lin - p_bf).abs() < 1e-9,
                "{text}: lineage {p_lin} vs brute force {p_bf}"
            );
        }
    }
}

#[test]
fn engine_auto_matches_brute_force_on_ptime_queries() {
    let engine = Engine::new();
    for (si, text) in PTIME_QUERIES.iter().enumerate() {
        for round in 0..4 {
            let (db, q) = random_instance(text, 100 + si as u64, round);
            let ev = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
            assert!(
                matches!(
                    ev.method,
                    Method::Extensional
                        | Method::Recurrence
                        | Method::SafePlan
                        | Method::ExactLineage
                ),
                "{text} picked {}",
                ev.method
            );
            let p_bf = brute_force_probability(&db, &q);
            assert!(
                (ev.probability - p_bf).abs() < 1e-7,
                "{text}: engine {} vs brute force {p_bf}",
                ev.probability
            );
        }
    }
}

#[test]
fn engine_karp_luby_approximates_hard_queries() {
    let engine = Engine::with_samples_and_seed(120_000, 11);
    for (si, text) in HARD_QUERIES.iter().enumerate() {
        let (db, q) = random_instance(text, 200 + si as u64, 0);
        let ev = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
        assert_eq!(ev.method, Method::KarpLuby, "{text}");
        let p_bf = brute_force_probability(&db, &q);
        assert!(
            (ev.probability - p_bf).abs() < 0.03,
            "{text}: KL {} vs exact {p_bf}",
            ev.probability
        );
    }
}

#[test]
fn recurrence_and_safe_eval_agree_on_no_self_join_queries() {
    for (si, text) in ["R(x), S(x,y)", "R(x), S(x,y), U(x,y,z)", "R(x), T(z,w)"]
        .iter()
        .enumerate()
    {
        for round in 0..4 {
            let (db, q) = random_instance(text, 300 + si as u64, round);
            let p_rec = eval_recurrence(&db, &q).unwrap();
            let p_safe = eval_inversion_free(&db, &q).unwrap();
            assert!(
                (p_rec - p_safe).abs() < 1e-9,
                "{text}: recurrence {p_rec} vs safe {p_safe}"
            );
        }
    }
}

#[test]
fn classification_matches_engine_choice() {
    for text in PTIME_QUERIES {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, text).unwrap();
        assert!(classify(&q).unwrap().complexity.is_ptime(), "{text}");
    }
    for text in HARD_QUERIES {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, text).unwrap();
        assert!(!classify(&q).unwrap().complexity.is_ptime(), "{text}");
    }
}
