//! Plan-cache behavior of the planner/executor split: one classification
//! per canonical query, cache hits for repeated and alpha-renamed traffic,
//! no collisions between distinct queries, and plan-once ranked
//! evaluation (no per-candidate classification).

use probdb::prelude::*;

fn movie_db() -> (ProbDb, Query, Vec<Var>, Vocabulary) {
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "Director(d), Credit(d,m)").unwrap();
    let d = q.vars()[0];
    let director = voc.find_relation("Director").unwrap();
    let credit = voc.find_relation("Credit").unwrap();
    let mut db = ProbDb::new(voc.clone());
    db.insert(director, vec![Value(1)], 0.9);
    db.insert(director, vec![Value(2)], 0.4);
    db.insert(credit, vec![Value(1), Value(100)], 0.8);
    db.insert(credit, vec![Value(2), Value(100)], 0.9);
    db.insert(credit, vec![Value(2), Value(101)], 0.9);
    (db, q, vec![d], voc)
}

#[test]
fn same_canonical_query_hits_the_cache() {
    let (db, q, _, _) = movie_db();
    let engine = Engine::new();
    for round in 0..5 {
        let ev = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
        assert_eq!(ev.cache_hit, round > 0, "round {round}");
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 4);
    assert_eq!(stats.classifications, 1, "classified exactly once");
}

#[test]
fn alpha_renamed_variants_share_one_entry() {
    let (db, _, _, voc) = movie_db();
    let engine = Engine::new();
    // The same query under different variable names and atom orders.
    let variants = [
        "Director(d), Credit(d,m)",
        "Director(boss), Credit(boss,film)",
        "Credit(a,b), Director(a)",
    ];
    let mut p = Vec::new();
    for text in variants {
        let q = parse_query(&mut voc.clone(), text).unwrap();
        p.push(
            engine
                .evaluate(&db, &q, Strategy::Auto)
                .unwrap()
                .probability,
        );
    }
    assert!((p[0] - p[1]).abs() < 1e-15);
    assert!((p[0] - p[2]).abs() < 1e-15);
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1, "one cache entry for all variants");
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.classifications, 1);
}

#[test]
fn distinct_queries_get_distinct_entries() {
    let (db, _, _, voc) = movie_db();
    let engine = Engine::new();
    // Different queries over the same vocabulary must not collide.
    let q1 = parse_query(&mut voc.clone(), "Director(d), Credit(d,m)").unwrap();
    let q2 = parse_query(&mut voc.clone(), "Director(d), Credit(m,d)").unwrap();
    let q3 = parse_query(&mut voc.clone(), "Credit(d,m)").unwrap();
    let p1 = engine
        .evaluate(&db, &q1, Strategy::Auto)
        .unwrap()
        .probability;
    let p2 = engine
        .evaluate(&db, &q2, Strategy::Auto)
        .unwrap()
        .probability;
    let p3 = engine
        .evaluate(&db, &q3, Strategy::Auto)
        .unwrap()
        .probability;
    assert_eq!(engine.cache_stats().misses, 3);
    assert_eq!(engine.cache_stats().hits, 0);
    // And each answer matches its own brute force.
    for (q, p) in [(&q1, p1), (&q2, p2), (&q3, p3)] {
        let bf = brute_force_probability(&db, q);
        assert!((p - bf).abs() < 1e-9);
    }
}

#[test]
fn ranked_answers_plan_the_template_once() {
    // A safe shape: the batched extensional plan needs no classification
    // at all, and repeated calls hit the ranked-plan cache.
    let (db, q, head, _) = movie_db();
    let engine = Engine::new();
    let first = ranked_answers(&engine, &db, &q, &head, Strategy::Auto).unwrap();
    assert!(first.len() >= 2);
    assert_eq!(engine.cache_stats().classifications, 0);
    assert_eq!(engine.cache_stats().misses, 1);
    let _ = ranked_answers(&engine, &db, &q, &head, Strategy::Auto).unwrap();
    assert_eq!(engine.cache_stats().hits, 1);
}

#[test]
fn per_binding_templates_classify_once_not_per_candidate() {
    // H_0 with head x: the residual is classified once for the whole
    // template — earlier revisions ran `classify` per candidate tuple.
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x,y), S(x2,y2), T(y2)").unwrap();
    let x = q.vars()[0];
    let (r, s, t) = (
        voc.find_relation("R").unwrap(),
        voc.find_relation("S").unwrap(),
        voc.find_relation("T").unwrap(),
    );
    let mut db = ProbDb::new(voc);
    for i in 0..6u64 {
        db.insert(r, vec![Value(i)], 0.5);
        db.insert(s, vec![Value(i), Value(10 + i)], 0.5);
        db.insert(t, vec![Value(10 + i)], 0.5);
    }
    let engine = Engine::new();
    let answers = ranked_answers(&engine, &db, &q, &[x], Strategy::Auto).unwrap();
    assert_eq!(answers.len(), 6);
    let stats = engine.cache_stats();
    assert_eq!(
        stats.classifications, 1,
        "one classification for 6 candidates"
    );
    // Re-running hits the ranked-template cache: still one classification.
    let _ = ranked_answers(&engine, &db, &q, &[x], Strategy::Auto).unwrap();
    assert_eq!(engine.cache_stats().classifications, 1);
}

#[test]
fn lru_keeps_hot_entries_under_churn() {
    let (db, _, _, voc) = movie_db();
    let hot = parse_query(&mut voc.clone(), "Director(d), Credit(d,m)").unwrap();
    let planner = Planner::with_capacity(10_000, 4);
    let executor = Executor::new(1);
    let mut hot_p = None;
    for i in 0..20u64 {
        // Keep the hot query hot...
        let planned = planner.plan(&hot).unwrap();
        let out = executor.execute(&db, &planned.plan).unwrap();
        match hot_p {
            None => hot_p = Some(out.probability),
            Some(p) => assert!((p - out.probability).abs() < 1e-15),
        }
        // ...while churning through cold constant-pinned variants.
        let cold = parse_query(&mut voc.clone(), &format!("Credit({i},m)")).unwrap();
        planner.plan(&cold).unwrap();
    }
    let stats = planner.stats();
    // The hot entry misses once and then always hits, despite evictions.
    assert_eq!(stats.hits, 19);
    assert_eq!(stats.misses, 21);
}
