//! The strongest end-to-end guarantee: for every query in the paper's
//! catalog, the engine's automatically selected plan must reproduce the
//! exact probability (PTIME entries) or land inside its confidence interval
//! (hard entries) on randomized instances — the dichotomy is not just a
//! label, the plans behind it are correct.

use dichotomy::engine::{Engine, Method, Strategy};
use dichotomy::{Expected, CATALOG};
use pdb::generators::{random_db_for_query, RandomDbOptions};
use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_catalog_query_evaluates_correctly() {
    let engine = Engine::with_samples_and_seed(60_000, 5);
    for (ei, entry) in CATALOG.iter().enumerate() {
        // Example 1.7's instances would need a domain that keeps the
        // brute-force enumeration feasible; its evaluation path (exact
        // lineage) is already covered by the engine tests, so bound the
        // tuple budget instead of skipping.
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, entry.text).unwrap();
        let rels: usize = {
            let mut rs: Vec<_> = q.atoms.iter().map(|a| a.rel).collect();
            rs.sort();
            rs.dedup();
            rs.len()
        };
        // Keep 2^tuples manageable for the ground-truth enumeration.
        let per_rel = (24 / rels.max(1)).clamp(2, 4);
        let opts = RandomDbOptions {
            domain: 2,
            tuples_per_relation: per_rel,
            prob_range: (0.1, 0.9),
        };
        let mut rng = StdRng::seed_from_u64(1000 + ei as u64);
        for round in 0..2 {
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            if db.num_tuples() > 22 {
                continue;
            }
            let exact = brute_force_probability(&db, &q);
            let ev = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
            match entry.expected {
                Expected::PTime | Expected::DivergesFromPaper => {
                    assert!(
                        (ev.probability - exact).abs() < 1e-7,
                        "{} round {round}: {} ({}) vs exact {exact}",
                        entry.name,
                        ev.probability,
                        ev.method
                    );
                }
                Expected::SharpPHard => {
                    assert_eq!(ev.method, Method::KarpLuby, "{}", entry.name);
                    assert!(
                        (ev.probability - exact).abs() < 6.0 * ev.std_error + 5e-3,
                        "{} round {round}: estimate {} vs exact {exact} (se {})",
                        entry.name,
                        ev.probability,
                        ev.std_error
                    );
                }
            }
        }
    }
}
