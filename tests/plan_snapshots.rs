//! Golden snapshots of the extensional plans for the paper's tractable
//! query shapes — plan *shape* regressions (a lost project, a mis-scoped
//! select) change probabilities only on adversarial data, so we pin the
//! rendered operator trees directly.

use probdb::prelude::*;

fn plan_text(query: &str) -> String {
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, query).unwrap();
    build_plan(&q).unwrap().display(&voc)
}

#[test]
fn q_hier() {
    assert_eq!(
        plan_text("R(x), S(x,y)"),
        "\
independent-project []
  independent-join
    scan R(x0)
    independent-project [x0]
      scan S(x0,x1)
"
    );
}

#[test]
fn three_level_hierarchy() {
    assert_eq!(
        plan_text("R(x), S(x,y), U(x,y,z)"),
        "\
independent-project []
  independent-join
    scan R(x0)
    independent-project [x0]
      independent-join
        scan S(x0,x1)
        independent-project [x0,x1]
          scan U(x0,x1,x2)
"
    );
}

#[test]
fn two_components() {
    assert_eq!(
        plan_text("R(x), T(z,w)"),
        "\
independent-join
  independent-project []
    scan R(x0)
  independent-project []
    scan T(x1,x2)
"
    );
}

#[test]
fn select_sits_at_the_binding_level() {
    assert_eq!(
        plan_text("R(x), S(x,y), x < y"),
        "\
independent-project []
  independent-join
    scan R(x0)
    independent-project [x0]
      select x0 < x1
        scan S(x0,x1)
"
    );
}

#[test]
fn negation_compiles_to_complement_scan() {
    assert_eq!(
        plan_text("R(x), not T(x)"),
        "\
independent-project []
  independent-join
    scan R(x0)
    complement-scan T(x0)
"
    );
}

#[test]
fn sibling_branches_under_one_root() {
    assert_eq!(
        plan_text("R(x), S(x,y), T2(x,z)"),
        "\
independent-project []
  independent-join
    scan R(x0)
    independent-project [x0]
      scan S(x0,x1)
    independent-project [x0]
      scan T2(x0,x2)
"
    );
}
