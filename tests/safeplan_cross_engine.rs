//! Cross-engine checks for the extensional plan subsystem: every query the
//! plan compiler accepts must produce the same probabilities as the engine's
//! tuple-at-a-time evaluators and as exhaustive world enumeration, in both
//! `f64` and exact rational arithmetic — on randomly generated databases
//! and randomly generated queries.

use dichotomy::engine::{Engine, Strategy};
use pdb::generators::{random_db_for_query, RandomDbOptions};
use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn plans_agree_with_engine_across_query_shapes() {
    let shapes = [
        "R(x)",
        "R(x), S(x,y)",
        "R(x), S(x,y), U(x,y,z)",
        "R(x), T(z,w)",
        "R(1), S(1,y)",
        "S(x,y), x < y",
        "R(x), S(x,y), x != y",
        "S(x,x)",
        "S(u,v), T(u,v)",
        "R(x), S(x,y), U(x,y,z), T(x,w)",
    ];
    let engine = Engine::new();
    let mut rng = StdRng::seed_from_u64(0x5AFE);
    for (i, shape) in shapes.iter().enumerate() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, shape).unwrap();
        let plan = build_plan(&q).unwrap();
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 4,
            prob_range: (0.05, 0.95),
        };
        for round in 0..3 {
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let by_plan = query_probability(&db, &plan);
            let by_engine = engine
                .evaluate(&db, &q, Strategy::Auto)
                .unwrap()
                .probability;
            assert!(
                (by_plan - by_engine).abs() < 1e-9,
                "shape {i} round {round}: plan {by_plan} vs engine {by_engine} for {shape}"
            );
            // Exact rational execution must agree with the f64 path.
            let probs = RatProbs::from_db(&db);
            let exact = query_probability_exact(&db, &probs, &plan);
            assert!(
                (exact.to_f64() - by_plan).abs() < 1e-9,
                "shape {i} round {round}: exact {exact} vs f64 {by_plan} for {shape}"
            );
        }
    }
}

/// Random self-join-free queries: whenever the compiler accepts one, its
/// plan must match brute force; whenever it rejects, the reason must be
/// visible in the query's syntax.
#[test]
fn random_queries_compile_or_reject_consistently() {
    let mut rng = StdRng::seed_from_u64(0xB111D);
    let mut compiled = 0;
    let mut rejected = 0;
    for round in 0..80u64 {
        let mut voc = Vocabulary::new();
        // Distinct relation symbols per atom: self-join-free by construction.
        let n_atoms = rng.gen_range(1..=3);
        let n_vars = rng.gen_range(1..=3u32);
        let parts: Vec<String> = (0..n_atoms)
            .map(|i| {
                let arity = rng.gen_range(1..=3usize);
                let args: Vec<String> = (0..arity)
                    .map(|_| format!("v{}", rng.gen_range(0..n_vars)))
                    .collect();
                format!("N{i}({})", args.join(","))
            })
            .collect();
        let q = parse_query(&mut voc, &parts.join(", ")).unwrap();
        match build_plan(&q) {
            Ok(plan) => {
                compiled += 1;
                let opts = RandomDbOptions {
                    domain: 2,
                    tuples_per_relation: 3,
                    prob_range: (0.1, 0.9),
                };
                let db = random_db_for_query(&q, &voc, opts, &mut rng);
                if db.num_tuples() > 18 {
                    continue;
                }
                let by_plan = query_probability(&db, &plan);
                let bf = brute_force_probability(&db, &q);
                assert!(
                    (by_plan - bf).abs() < 1e-9,
                    "round {round}: plan {by_plan} vs brute force {bf} for {q:?}"
                );
            }
            Err(safeplan::PlanError::NotHierarchical) => {
                rejected += 1;
                assert!(
                    !dichotomy::is_hierarchical(&q.normalize().unwrap()),
                    "round {round}: rejected hierarchical query {q:?}"
                );
            }
            Err(e) => panic!("round {round}: unexpected rejection {e} for {q:?}"),
        }
    }
    assert!(compiled >= 20, "only {compiled} queries compiled");
    assert!(rejected >= 5, "only {rejected} rejections exercised");
}

/// Exact recurrence, exact plan, and exact lineage agree as rationals (no
/// epsilon anywhere).
#[test]
fn exact_paths_agree_as_rationals() {
    let mut rng = StdRng::seed_from_u64(0xE8AC7);
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
    let plan = build_plan(&q).unwrap();
    let opts = RandomDbOptions {
        domain: 3,
        tuples_per_relation: 4,
        prob_range: (0.1, 0.9),
    };
    for _ in 0..5 {
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = RatProbs::from_db(&db);
        let by_plan = query_probability_exact(&db, &probs, &plan);
        let by_rec = eval_recurrence_exact(&db, &probs, &q).unwrap();
        let by_lineage = pdb::exact_query_probability(&db, &probs, &q);
        assert_eq!(by_plan, by_rec);
        assert_eq!(by_rec, by_lineage);
    }
}

/// Substructure counting agrees across the recurrence, lineage, and world
/// enumeration.
#[test]
fn counting_agrees_across_methods() {
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let mut db = ProbDb::new(voc);
    for i in 0..3u64 {
        db.insert(r, vec![Value(i)], 0.7);
        db.insert(s, vec![Value(i), Value(10 + i % 2)], 0.7);
    }
    let by_rec = count_substructures_recurrence(&db, &q).unwrap();
    let by_lineage = count_satisfying_worlds_exact(&db, &q);
    let by_enum = pdb::count_satisfying_worlds(&db, &q);
    assert_eq!(by_rec, by_lineage);
    assert_eq!(by_rec.to_u64().unwrap(), by_enum);
}

/// Multisimulation's converged top-k equals the exact top-k on random
/// instances (when separated enough to converge, which the config forces by
/// a generous budget).
#[test]
fn multisim_matches_exact_ranking() {
    let mut rng = StdRng::seed_from_u64(0x707);
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "Director(d), Credit(d,m)").unwrap();
    let d = q.vars()[0];
    let director = voc.find_relation("Director").unwrap();
    let credit = voc.find_relation("Credit").unwrap();
    let mut db = ProbDb::new(voc);
    for i in 0..5u64 {
        db.insert(director, vec![Value(i)], rng.gen_range(0.05..0.95));
        db.insert(credit, vec![Value(i), Value(100 + i)], 0.9);
    }
    let engine = Engine::new();
    let exact = dichotomy::ranked_answers(&engine, &db, &q, &[d], Strategy::Auto).unwrap();
    let config = MultiSimConfig {
        batch: 1024,
        delta: 0.02,
        max_samples_per_candidate: 1 << 22,
        seed: 99,
    };
    let ms = multisim_top_k(&db, &q, &[d], 2, config);
    if ms.converged {
        let got: Vec<_> = ms.top.iter().map(|a| a.tuple.clone()).collect();
        let want: Vec<_> = exact.iter().take(2).map(|a| a.tuple.clone()).collect();
        assert_eq!(got, want);
    }
    // Whatever happened, the intervals must cover the exact values.
    for a in &ms.all {
        let ex = exact.iter().find(|e| e.tuple == a.tuple).unwrap();
        assert!(
            a.low - 1e-9 <= ex.probability && ex.probability <= a.high + 1e-9,
            "interval [{}, {}] misses {}",
            a.low,
            a.high,
            ex.probability
        );
    }
}
