//! Cross-engine checks for the extensional plan subsystem: every query the
//! plan compiler accepts must produce the same probabilities as the engine's
//! tuple-at-a-time evaluators and as exhaustive world enumeration, in both
//! `f64` and exact rational arithmetic — on randomly generated databases
//! and randomly generated queries.

use dichotomy::engine::{Engine, Strategy};
use pdb::generators::{random_db_for_query, RandomDbOptions};
use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn plans_agree_with_engine_across_query_shapes() {
    let shapes = [
        "R(x)",
        "R(x), S(x,y)",
        "R(x), S(x,y), U(x,y,z)",
        "R(x), T(z,w)",
        "R(1), S(1,y)",
        "S(x,y), x < y",
        "R(x), S(x,y), x != y",
        "S(x,x)",
        "S(u,v), T(u,v)",
        "R(x), S(x,y), U(x,y,z), T(x,w)",
    ];
    let engine = Engine::new();
    let mut rng = StdRng::seed_from_u64(0x5AFE);
    for (i, shape) in shapes.iter().enumerate() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, shape).unwrap();
        let plan = build_plan(&q).unwrap();
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 4,
            prob_range: (0.05, 0.95),
        };
        for round in 0..3 {
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let by_plan = query_probability(&db, &plan);
            let by_engine = engine
                .evaluate(&db, &q, Strategy::Auto)
                .unwrap()
                .probability;
            assert!(
                (by_plan - by_engine).abs() < 1e-9,
                "shape {i} round {round}: plan {by_plan} vs engine {by_engine} for {shape}"
            );
            // Exact rational execution must agree with the f64 path.
            let probs = RatProbs::from_db(&db);
            let exact = query_probability_exact(&db, &probs, &plan);
            assert!(
                (exact.to_f64() - by_plan).abs() < 1e-9,
                "shape {i} round {round}: exact {exact} vs f64 {by_plan} for {shape}"
            );
        }
    }
}

/// Random self-join-free queries: whenever the compiler accepts one, its
/// plan must match brute force; whenever it rejects, the reason must be
/// visible in the query's syntax.
#[test]
fn random_queries_compile_or_reject_consistently() {
    let mut rng = StdRng::seed_from_u64(0xB111D);
    let mut compiled = 0;
    let mut rejected = 0;
    for round in 0..80u64 {
        let mut voc = Vocabulary::new();
        // Distinct relation symbols per atom: self-join-free by construction.
        let n_atoms = rng.gen_range(1..=3);
        let n_vars = rng.gen_range(1..=3u32);
        let parts: Vec<String> = (0..n_atoms)
            .map(|i| {
                let arity = rng.gen_range(1..=3usize);
                let args: Vec<String> = (0..arity)
                    .map(|_| format!("v{}", rng.gen_range(0..n_vars)))
                    .collect();
                format!("N{i}({})", args.join(","))
            })
            .collect();
        let q = parse_query(&mut voc, &parts.join(", ")).unwrap();
        match build_plan(&q) {
            Ok(plan) => {
                compiled += 1;
                let opts = RandomDbOptions {
                    domain: 2,
                    tuples_per_relation: 3,
                    prob_range: (0.1, 0.9),
                };
                let db = random_db_for_query(&q, &voc, opts, &mut rng);
                if db.num_tuples() > 18 {
                    continue;
                }
                let by_plan = query_probability(&db, &plan);
                let bf = brute_force_probability(&db, &q);
                assert!(
                    (by_plan - bf).abs() < 1e-9,
                    "round {round}: plan {by_plan} vs brute force {bf} for {q:?}"
                );
            }
            Err(safeplan::PlanError::NotHierarchical) => {
                rejected += 1;
                assert!(
                    !dichotomy::is_hierarchical(&q.normalize().unwrap()),
                    "round {round}: rejected hierarchical query {q:?}"
                );
            }
            Err(e) => panic!("round {round}: unexpected rejection {e} for {q:?}"),
        }
    }
    assert!(compiled >= 20, "only {compiled} queries compiled");
    assert!(rejected >= 5, "only {rejected} rejections exercised");
}

/// Exact recurrence, exact plan, and exact lineage agree as rationals (no
/// epsilon anywhere).
#[test]
fn exact_paths_agree_as_rationals() {
    let mut rng = StdRng::seed_from_u64(0xE8AC7);
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
    let plan = build_plan(&q).unwrap();
    let opts = RandomDbOptions {
        domain: 3,
        tuples_per_relation: 4,
        prob_range: (0.1, 0.9),
    };
    for _ in 0..5 {
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let probs = RatProbs::from_db(&db);
        let by_plan = query_probability_exact(&db, &probs, &plan);
        let by_rec = eval_recurrence_exact(&db, &probs, &q).unwrap();
        let by_lineage = pdb::exact_query_probability(&db, &probs, &q);
        assert_eq!(by_plan, by_rec);
        assert_eq!(by_rec, by_lineage);
    }
}

/// Substructure counting agrees across the recurrence, lineage, and world
/// enumeration.
#[test]
fn counting_agrees_across_methods() {
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let mut db = ProbDb::new(voc);
    for i in 0..3u64 {
        db.insert(r, vec![Value(i)], 0.7);
        db.insert(s, vec![Value(i), Value(10 + i % 2)], 0.7);
    }
    let by_rec = count_substructures_recurrence(&db, &q).unwrap();
    let by_lineage = count_satisfying_worlds_exact(&db, &q);
    let by_enum = pdb::count_satisfying_worlds(&db, &q);
    assert_eq!(by_rec, by_lineage);
    assert_eq!(by_rec.to_u64().unwrap(), by_enum);
}

/// Multisimulation's converged top-k equals the exact top-k on random
/// instances (when separated enough to converge, which the config forces by
/// a generous budget).
#[test]
fn multisim_matches_exact_ranking() {
    let mut rng = StdRng::seed_from_u64(0x707);
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "Director(d), Credit(d,m)").unwrap();
    let d = q.vars()[0];
    let director = voc.find_relation("Director").unwrap();
    let credit = voc.find_relation("Credit").unwrap();
    let mut db = ProbDb::new(voc);
    for i in 0..5u64 {
        db.insert(director, vec![Value(i)], rng.gen_range(0.05..0.95));
        db.insert(credit, vec![Value(i), Value(100 + i)], 0.9);
    }
    let engine = Engine::new();
    let exact = dichotomy::ranked_answers(&engine, &db, &q, &[d], Strategy::Auto).unwrap();
    let config = MultiSimConfig {
        batch: 1024,
        delta: 0.02,
        max_samples_per_candidate: 1 << 22,
        seed: 99,
        threads: 1,
    };
    let ms = multisim_top_k(&db, &q, &[d], 2, config);
    if ms.converged {
        let got: Vec<_> = ms.top.iter().map(|a| a.tuple.clone()).collect();
        let want: Vec<_> = exact.iter().take(2).map(|a| a.tuple.clone()).collect();
        assert_eq!(got, want);
    }
    // Whatever happened, the intervals must cover the exact values.
    for a in &ms.all {
        let ex = exact.iter().find(|e| e.tuple == a.tuple).unwrap();
        assert!(
            a.low - 1e-9 <= ex.probability && ex.probability <= a.high + 1e-9,
            "interval [{}, {}] misses {}",
            a.low,
            a.high,
            ex.probability
        );
    }
}

/// Generate a random hierarchical self-join-free query: a forest of
/// hierarchy trees where every atom's variables are a root-to-node path,
/// each atom over a fresh relation. Hierarchical and self-join-free by
/// construction — exactly the Theorem 1.3 fragment the extensional
/// compiler accepts.
fn random_hierarchical_query(rng: &mut StdRng, voc: &mut Vocabulary) -> Query {
    fn grow(
        rng: &mut StdRng,
        voc: &mut Vocabulary,
        atoms: &mut Vec<cq::Atom>,
        path: &mut Vec<Var>,
        next_var: &mut u32,
        depth: u32,
    ) {
        // Atoms whose variables are exactly the current path.
        for _ in 0..rng.gen_range(1..=2u32) {
            let name = format!("P{}", atoms.len());
            let rel = voc.relation(&name, path.len()).unwrap();
            let args = path.iter().map(|&v| cq::Term::Var(v)).collect();
            atoms.push(cq::Atom::new(rel, args));
        }
        if depth < 3 {
            for _ in 0..rng.gen_range(0..=2u32) {
                path.push(Var(*next_var));
                *next_var += 1;
                grow(rng, voc, atoms, path, next_var, depth + 1);
                path.pop();
            }
        }
    }
    let mut atoms = Vec::new();
    let mut next_var = 0u32;
    for _ in 0..rng.gen_range(1..=2u32) {
        let mut path = vec![Var(next_var)];
        next_var += 1;
        grow(rng, voc, &mut atoms, &mut path, &mut next_var, 1);
    }
    Query::new(atoms, vec![])
}

/// For randomized hierarchical self-join-free queries, the planner's
/// extensional plan, the Eq. 3 recurrence, and exact lineage compilation
/// agree within 1e-9 — the cross-engine guarantee of the planner/executor
/// split, exercised through the new Planner API.
#[test]
fn planner_extensional_recurrence_and_lineage_agree_on_random_safe_queries() {
    let mut rng = StdRng::seed_from_u64(0x91A);
    for case in 0..40 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let planner = Planner::new(10_000);
        let planned = planner.plan(&q).unwrap();
        assert!(
            matches!(planned.plan, PhysicalPlan::Extensional { .. }),
            "case {case}: safe query must compile extensionally, got {:?} for {}",
            planned.plan,
            q.display(&voc)
        );
        let executor = Executor::new(7);
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 3,
            prob_range: (0.1, 0.9),
        };
        for round in 0..2 {
            let db = random_db_for_query(&q, &voc, opts, &mut rng);
            let by_plan = executor.execute(&db, &planned.plan).unwrap().probability;
            let by_rec = eval_recurrence(&db, &q).unwrap();
            let dnf = lineage_of(&db, &q);
            let by_lineage = exact_probability(&dnf, &db.prob_vector());
            assert!(
                (by_plan - by_rec).abs() < 1e-9,
                "case {case} round {round}: extensional {by_plan} vs recurrence {by_rec} for {}",
                q.display(&voc)
            );
            assert!(
                (by_plan - by_lineage).abs() < 1e-9,
                "case {case} round {round}: extensional {by_plan} vs lineage {by_lineage} for {}",
                q.display(&voc)
            );
        }
        // And the cache serves the same plan on re-planning.
        let again = planner.plan(&q).unwrap();
        assert_eq!(planner.stats().hits, 1);
        assert_eq!(again.plan.method(), planned.plan.method());
    }
}

/// Batched ranked plans agree with per-residual evaluation: for random
/// head choices over random safe queries, every candidate's probability
/// from the one-pass extensional plan matches the residual's probability
/// computed independently.
#[test]
fn batched_ranked_plans_agree_with_per_residual_evaluation() {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let mut batched_seen = 0;
    for case in 0..30 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let vars = q.vars();
        let head = vec![vars[rng.gen_range(0..vars.len())]];
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 3,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let engine = Engine::new();
        let answers = dichotomy::ranked_answers(&engine, &db, &q, &head, Strategy::Auto).unwrap();
        if answers.iter().all(|a| a.method == Method::Extensional) && !answers.is_empty() {
            batched_seen += 1;
        }
        for a in &answers {
            let residual = q.apply(&cq::Subst::singleton(head[0], a.tuple[0]));
            let by_rec = eval_recurrence(&db, &residual).unwrap();
            assert!(
                (a.probability - by_rec).abs() < 1e-9,
                "case {case}: batched {} vs residual recurrence {by_rec} for {} head {:?}",
                a.probability,
                q.display(&voc),
                head
            );
        }
    }
    assert!(
        batched_seen >= 10,
        "expected most random safe shapes to run batched, saw {batched_seen}"
    );
}
