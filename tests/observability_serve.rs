//! End-to-end coverage of the serving observability surfaces: `/metrics`
//! as valid Prometheus text, the JSONL access log (every line parses;
//! slow entries carry the plan summary and operator counters), the
//! flight recorder behind `/debug/requests` (span retention for slow
//! requests), inline `"trace": true` captures, and the invariant that
//! all of it is purely observational — answers are bit-identical with
//! observability off.

use std::time::Duration;

use probdb::prelude::*;
use telemetry::expose::parse_exposition;
use telemetry::json::{parse, Json};

fn sensor_db() -> (ProbDb, Vocabulary) {
    let mut voc = Vocabulary::new();
    parse_query(&mut voc, "R(x), S(x, y)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let mut db = ProbDb::new(voc.clone());
    let mut batch = DeltaBatch::new();
    for i in 0..20u64 {
        batch.insert(r, vec![Value(i)], 0.4 + (i as f64) * 0.01);
        batch.insert(s, vec![Value(i), Value(i + 100)], 0.7);
    }
    db.apply(&batch);
    (db, voc)
}

fn start_server(opts: ServeOptions) -> Server {
    let (db, _) = sensor_db();
    Server::start(db, opts).expect("server starts")
}

fn default_opts() -> ServeOptions {
    ServeOptions {
        workers: 2,
        watch_timeout: Duration::from_secs(2),
        ..ServeOptions::default()
    }
}

const EVAL_BODY: &str = "{\"query\":\"R(x), S(x, y)\"}";

#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let server = start_server(default_opts());
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Generate traffic across endpoints so the scrape has real samples.
    assert_eq!(client.post("/eval", EVAL_BODY).unwrap().status, 200);
    assert_eq!(client.post("/eval", EVAL_BODY).unwrap().status, 200);
    assert_eq!(client.get("/health").unwrap().status, 200);

    let scrape = client.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    // The parser enforces the text-format invariants: samples belong to
    // declared families, histogram buckets are cumulative with strictly
    // increasing `le`, `+Inf` is last and equals `_count`, `_sum` exists.
    let families = parse_exposition(&scrape.body).expect("valid Prometheus exposition");
    assert!(!families.is_empty());

    let requests = families
        .iter()
        .find(|f| f.name == "server_requests_total")
        .expect("server_requests_total family");
    assert_eq!(requests.kind, "counter");
    assert!(requests.value("server_requests_total").unwrap() >= 3.0);

    let eval_latency = families
        .iter()
        .find(|f| f.name == "server_latency_ns_eval")
        .expect("per-endpoint latency histogram");
    assert_eq!(eval_latency.kind, "histogram");

    // A second scrape after more traffic must still be well-formed.
    assert_eq!(client.post("/eval", EVAL_BODY).unwrap().status, 200);
    let scrape = client.get("/metrics").unwrap();
    parse_exposition(&scrape.body).expect("second scrape still valid");
}

#[test]
fn slow_requests_capture_plan_counters_and_spans() {
    let log_path = std::env::temp_dir().join(format!(
        "probdb_access_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&log_path);
    // slow_ms = 0: every request crosses the slow threshold, so every
    // access-log entry carries the plan and the recorder retains spans.
    let server = start_server(ServeOptions {
        slow_ms: Some(0),
        access_log_path: Some(log_path.to_string_lossy().into_owned()),
        ..default_opts()
    });
    let mut client = HttpClient::connect(server.addr()).unwrap();

    assert_eq!(client.post("/eval", EVAL_BODY).unwrap().status, 200);
    assert_eq!(client.post("/eval", EVAL_BODY).unwrap().status, 200);
    let rank = client
        .post(
            "/rank",
            "{\"query\":\"R(x0), S(x0, x1)\",\"head\":\"x0\",\"top\":3}",
        )
        .unwrap();
    assert_eq!(rank.status, 200, "{}", rank.body);

    // Every access-log line is parseable JSON; slow eval entries carry
    // the plan summary (method + classification) and operator counters.
    // Records land just after the response bytes, so poll briefly.
    let mut tail = server.access_log_tail();
    for _ in 0..50 {
        if tail.len() >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        tail = server.access_log_tail();
    }
    assert!(tail.len() >= 3, "expected access-log entries: {tail:?}");
    let docs: Vec<Json> = tail
        .iter()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("unparseable access line {l:?}: {e}")))
        .collect();
    let slow_eval = docs
        .iter()
        .find(|d| {
            d.get("endpoint") == Some(&Json::Str("eval".into()))
                && d.get("slow") == Some(&Json::Bool(true))
        })
        .expect("a slow eval entry");
    let plan = slow_eval.get("plan").expect("slow entries carry the plan");
    assert!(plan.get("method").is_some(), "{slow_eval:?}");
    assert!(plan.get("classification").is_some(), "{slow_eval:?}");
    let ops = plan
        .get("ops")
        .expect("slow entries carry operator counters");
    assert!(ops.get("scans").and_then(|j| j.as_u64()).is_some());

    // The file sink holds the same lines.
    let file = std::fs::read_to_string(&log_path).expect("access log file");
    let file_lines: Vec<&str> = file.lines().collect();
    assert_eq!(file_lines.len(), tail.len());
    for line in &file_lines {
        parse(line).unwrap_or_else(|e| panic!("unparseable file line {line:?}: {e}"));
    }
    let _ = std::fs::remove_file(&log_path);

    // The flight recorder retains the span capture for slow requests.
    let dump = client.get("/debug/requests").unwrap();
    assert_eq!(dump.status, 200);
    let doc = parse(&dump.body).unwrap();
    assert_eq!(doc.get("enabled"), Some(&Json::Bool(true)));
    let requests = doc.get("requests").and_then(|j| j.as_arr()).unwrap();
    let eval_rec = requests
        .iter()
        .find(|r| r.get("endpoint") == Some(&Json::Str("eval".into())))
        .expect("an eval record in the recorder");
    assert!(eval_rec.get("query_key").is_some(), "{eval_rec:?}");
    let spans = eval_rec
        .get("spans")
        .and_then(|j| j.as_arr())
        .expect("slow records retain spans");
    assert!(
        spans
            .iter()
            .any(|s| s.get("label") == Some(&Json::Str("evaluate".into()))),
        "span capture must include the evaluate span: {spans:?}"
    );
}

#[test]
fn trace_flag_returns_inline_spans() {
    // Pin a threshold nothing here can cross (the suite also runs under
    // ENGINE_SLOW_MS=0, which would otherwise make every request slow).
    let server = start_server(ServeOptions {
        slow_ms: Some(3_600_000),
        ..default_opts()
    });
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let traced = client
        .post("/eval", "{\"query\":\"R(x), S(x, y)\",\"trace\":true}")
        .unwrap();
    assert_eq!(traced.status, 200, "{}", traced.body);
    let doc = parse(&traced.body).unwrap();
    let spans = doc
        .get("trace")
        .and_then(|j| j.as_arr())
        .expect("trace:true returns inline spans");
    assert!(!spans.is_empty());
    assert!(
        spans
            .iter()
            .any(|s| s.get("label") == Some(&Json::Str("evaluate".into()))),
        "{spans:?}"
    );
    for s in spans {
        let start = s.get("start_ns").and_then(|j| j.as_u64()).unwrap();
        let end = s.get("end_ns").and_then(|j| j.as_u64()).unwrap();
        assert!(end >= start, "span interval must be well-formed: {s:?}");
    }

    // Without the flag the key is absent entirely.
    let plain = client.post("/eval", EVAL_BODY).unwrap();
    assert_eq!(plain.status, 200);
    assert!(parse(&plain.body).unwrap().get("trace").is_none());

    // rank honors the flag too.
    let ranked = client
        .post(
            "/rank",
            "{\"query\":\"R(x0), S(x0, x1)\",\"head\":\"x0\",\"top\":2,\"trace\":true}",
        )
        .unwrap();
    assert_eq!(ranked.status, 200, "{}", ranked.body);
    let rdoc = parse(&ranked.body).unwrap();
    assert!(
        !rdoc
            .get("trace")
            .and_then(|j| j.as_arr())
            .unwrap()
            .is_empty(),
        "{}",
        ranked.body
    );

    // Below the threshold nothing is slow, so the recorder keeps the
    // records but sheds their span captures.
    let dump = client.get("/debug/requests").unwrap();
    let ddoc = parse(&dump.body).unwrap();
    let requests = ddoc.get("requests").and_then(|j| j.as_arr()).unwrap();
    assert!(!requests.is_empty());
    for r in requests {
        assert!(
            r.get("spans").is_none(),
            "fast request retained spans: {r:?}"
        );
    }
}

#[test]
fn observability_is_purely_observational() {
    let on = start_server(default_opts());
    let off = start_server(ServeOptions {
        observability: false,
        ..default_opts()
    });
    let mut on_client = HttpClient::connect(on.addr()).unwrap();
    let mut off_client = HttpClient::connect(off.addr()).unwrap();

    for body in [
        EVAL_BODY,
        "{\"query\":\"R(x), S(x, y)\",\"trace\":true}",
        EVAL_BODY, // warm repeat: result-cache hit on both sides
    ] {
        let a = on_client.post("/eval", body).unwrap();
        let b = off_client.post("/eval", body).unwrap();
        assert_eq!(a.status, 200, "{}", a.body);
        assert_eq!(b.status, 200, "{}", b.body);
        let pa = parse(&a.body)
            .unwrap()
            .get("probability")
            .unwrap()
            .as_f64()
            .unwrap();
        let pb = parse(&b.body)
            .unwrap()
            .get("probability")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(
            pa.to_bits(),
            pb.to_bits(),
            "answers must be bit-identical with observability off"
        );
    }

    // With observability off the recorder reports itself disabled and the
    // access-log tail stays empty; /metrics still serves (the registry is
    // process-global).
    let dump = off_client.get("/debug/requests").unwrap();
    assert_eq!(dump.status, 200);
    let ddoc = parse(&dump.body).unwrap();
    assert_eq!(ddoc.get("enabled"), Some(&Json::Bool(false)));
    assert!(off.access_log_tail().is_empty());
    let scrape = off_client.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    parse_exposition(&scrape.body).expect("valid exposition with obs off");

    // /stats reflects the recorder state on both sides.
    let stats = parse(&on_client.get("/stats").unwrap().body).unwrap();
    let rec = stats.get("recorder").expect("recorder stats");
    assert_eq!(rec.get("enabled"), Some(&Json::Bool(true)));
    assert!(rec.get("recorded").and_then(|j| j.as_u64()).unwrap() >= 1);
    let stats = parse(&off_client.get("/stats").unwrap().body).unwrap();
    let rec = stats.get("recorder").expect("recorder stats");
    assert_eq!(rec.get("enabled"), Some(&Json::Bool(false)));

    // Per-endpoint latency summaries appear in /stats.
    let stats = parse(&on_client.get("/stats").unwrap().body).unwrap();
    let eps = stats.get("endpoints").expect("per-endpoint summaries");
    let eval = eps.get("eval").expect("eval endpoint summary");
    assert!(eval.get("count").and_then(|j| j.as_u64()).unwrap() >= 1);
    assert!(eval.get("p95_ns").and_then(|j| j.as_u64()).is_some());
}
