//! Plan-cache / mutation interaction: a cached plan re-used after
//! `ProbDb::apply(delta)` must never serve stale probabilities. Plans are
//! database-independent (the cache key is the canonical query), so a cache
//! hit after a mutation must re-execute against the *current* data — and
//! subscribed views must report the current version stamp on every read.

use probdb::prelude::{
    brute_force_probability, parse_query, DeltaBatch, Engine, Method, ProbDb, Strategy, Value,
    Vocabulary,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_db(seed: u64) -> (ProbDb, cq::Query, StdRng) {
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = ProbDb::new(voc);
    let mut batch = DeltaBatch::new();
    for i in 0..4u64 {
        batch.insert(r, vec![Value(i)], rng.gen_range(0.1..0.9));
        batch.insert(s, vec![Value(i), Value(10 + i)], rng.gen_range(0.1..0.9));
    }
    db.apply(&batch);
    (db, q, rng)
}

/// Randomized rounds: mutate through the delta log, then check that the
/// (cache-hitting) engine evaluation, a cold fresh-engine evaluation, and
/// the brute-force oracle all agree — the cached plan reflects the data,
/// never the cache's age.
#[test]
fn cached_plans_never_serve_stale_probabilities() {
    let (mut db, q, mut rng) = small_db(0x57A1E);
    let engine = Engine::new();
    let r = db.voc.find_relation("R").unwrap();
    let s = db.voc.find_relation("S").unwrap();
    let warm = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    assert!(!warm.cache_hit);
    assert_eq!(warm.method, Method::Extensional);
    for round in 0..12 {
        let mut batch = DeltaBatch::new();
        match round % 3 {
            0 => {
                batch.update(r, vec![Value(round % 4)], rng.gen_range(0.05..0.95));
            }
            1 => {
                batch.delete(s, vec![Value(round % 4), Value(10 + round % 4)]);
                batch.insert(s, vec![Value(round % 4), Value(100 + round)], 0.5);
            }
            _ => {
                batch.insert(r, vec![Value(100 + round)], rng.gen_range(0.05..0.95));
            }
        }
        db.apply(&batch);
        let cached = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
        assert!(cached.cache_hit, "round {round}: plan must come from cache");
        let fresh = Engine::new().evaluate(&db, &q, Strategy::Auto).unwrap();
        assert_eq!(
            cached.probability.to_bits(),
            fresh.probability.to_bits(),
            "round {round}: cached plan diverged from a fresh plan"
        );
        let bf = brute_force_probability(&db, &q);
        assert!(
            (cached.probability - bf).abs() < 1e-9,
            "round {round}: cached {} vs brute force {bf}",
            cached.probability
        );
    }
    let stats = engine.cache_stats();
    assert_eq!(
        stats.classifications, 1,
        "one classification ever: {stats:?}"
    );
}

/// The version-stamp check: every `ViewHandle::read` reflects the
/// database's version at read time, whether or not deltas (or out-of-band
/// mutations, which invalidate the log) happened in between.
#[test]
fn view_readings_carry_the_current_version_stamp() {
    let (mut db, q, _) = small_db(0xBEE);
    let engine = Engine::new();
    let view = engine.subscribe(&db, &q).unwrap();
    let r = db.voc.find_relation("R").unwrap();
    let v0 = db.version();
    let first = view.read(&db).unwrap();
    assert_eq!(first.version, v0);
    // Logged mutation.
    let mut batch = DeltaBatch::new();
    batch.update(r, vec![Value(0)], 0.42);
    db.apply(&batch);
    let second = view.read(&db).unwrap();
    assert_eq!(second.version, v0 + 1);
    assert!(second.refreshed);
    // Out-of-band mutation: the log is invalidated; the view must rebuild
    // rather than serve the pre-mutation answer.
    db.insert(r, vec![Value(999)], 0.9);
    let third = view.read(&db).unwrap();
    assert_eq!(third.version, db.version());
    assert!(third.refreshed);
    let counters = third.evaluation.incremental.expect("incremental view");
    assert_eq!(counters.full_rebuilds, 1, "log gap forces a rebuild");
    let cold = Engine::new().evaluate(&db, &q, Strategy::Auto).unwrap();
    assert_eq!(
        third.evaluation.probability.to_bits(),
        cold.probability.to_bits()
    );
}
