//! Result-cache semantics (the serving layer's read short-circuit): a
//! hit must be **bit-for-bit** the memoized cold run — including Monte
//! Carlo estimates, which are deterministic per `(seed, threads,
//! samples)` — and the key must separate everything that could change
//! the answer: database identity (uid), version, strategy, sample
//! budget, and executor shape.

use probdb::prelude::*;

fn hard_db() -> (ProbDb, Query) {
    // H0 = R(x), S(x, y), T(y) — the canonical #P-hard query, so Auto
    // takes the sampling path and bit-identity is a real statement about
    // RNG reproducibility, not just exact arithmetic.
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x, y), T(y)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let t = voc.find_relation("T").unwrap();
    let mut db = ProbDb::new(voc);
    let mut batch = DeltaBatch::new();
    // Kept sparse so the query probability sits well inside (0, 1) —
    // otherwise every estimate saturates at the same bits and
    // distinguishing cache entries by their answers is meaningless.
    for i in 0..6u64 {
        batch.insert(r, vec![Value(i)], 0.10 + (i as f64) * 0.02);
        batch.insert(t, vec![Value(i)], 0.15);
        for j in 0..6u64 {
            if (i + j) % 3 == 0 {
                batch.insert(s, vec![Value(i), Value(j)], 0.2);
            }
        }
    }
    db.apply(&batch);
    (db, q)
}

fn mc_engine(samples: u64, seed: u64) -> Engine {
    Engine::with_options(samples, seed, ExecOptions::default()).with_result_cache()
}

#[test]
fn hits_are_bit_identical_to_the_cold_run_even_for_sampling() {
    let (db, q) = hard_db();
    let engine = mc_engine(4_000, 0xABCD);

    let cold = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    assert!(!cold.result_cache_hit);
    assert!(cold.std_error > 0.0, "expected the sampling path");

    let hit = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    assert!(hit.result_cache_hit, "second identical read must hit");
    assert_eq!(hit.probability.to_bits(), cold.probability.to_bits());
    assert_eq!(hit.std_error.to_bits(), cold.std_error.to_bits());
    assert_eq!(hit.method, cold.method);

    let rc = engine.result_cache().unwrap();
    assert_eq!(rc.hits(), 1);
    assert_eq!(rc.misses(), 1);
}

#[test]
fn keys_separate_version_strategy_and_database_identity() {
    let (mut db, q) = hard_db();
    let engine = mc_engine(2_000, 0x1234);

    let a = engine.evaluate(&db, &q, Strategy::Auto).unwrap();

    // A different strategy (explicit budget) must not collide with Auto.
    let forced = engine
        .evaluate(&db, &q, Strategy::MonteCarlo { samples: 500 })
        .unwrap();
    assert!(!forced.result_cache_hit);

    // A clone is a distinct database identity even at the same version:
    // its tuples could diverge later, so it gets a fresh uid and never
    // shares entries with the original.
    let clone = db.clone();
    assert_eq!(clone.version(), db.version());
    assert_ne!(clone.uid(), db.uid());
    let via_clone = engine.evaluate(&clone, &q, Strategy::Auto).unwrap();
    assert!(!via_clone.result_cache_hit);
    // Same content, same seed → same bits, via a different cache entry.
    assert_eq!(via_clone.probability.to_bits(), a.probability.to_bits());

    // A version bump invalidates by construction (new key, old entries
    // left to age out of the LRU).
    let r = db.voc.find_relation("R").unwrap();
    let mut bump = DeltaBatch::new();
    bump.update(r, vec![Value(0)], 0.99);
    db.apply(&bump);
    let after = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    assert!(!after.result_cache_hit);
    assert_ne!(after.probability.to_bits(), a.probability.to_bits());

    // And a repeat at the new version hits again.
    let again = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    assert!(again.result_cache_hit);
    assert_eq!(again.probability.to_bits(), after.probability.to_bits());
}

#[test]
fn different_seeds_and_budgets_never_share_entries() {
    let (db, q) = hard_db();

    let a1 = mc_engine(2_000, 1)
        .evaluate(&db, &q, Strategy::Auto)
        .unwrap();
    let a2 = mc_engine(2_000, 2)
        .evaluate(&db, &q, Strategy::Auto)
        .unwrap();
    // Different seeds produce different estimates — if these collided in
    // a shared cache the bits would have to match.
    assert_ne!(a1.probability.to_bits(), a2.probability.to_bits());

    let engine = mc_engine(2_000, 1);
    let small = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    let engine_big = mc_engine(8_000, 1);
    let big = engine_big.evaluate(&db, &q, Strategy::Auto).unwrap();
    assert!(!big.result_cache_hit);
    assert!(
        big.std_error < small.std_error,
        "larger budget must tighten the estimate, not replay the small one"
    );
}

#[test]
fn disabled_cache_never_reports_hits() {
    let (db, q) = hard_db();
    let engine = Engine::with_options(2_000, 7, ExecOptions::default());
    if std::env::var("ENGINE_RESULT_CACHE").is_ok() {
        // Suite-wide forcing (the CI job) legitimately enables it.
        return;
    }
    assert!(engine.result_cache().is_none());
    let a = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    let b = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
    assert!(!a.result_cache_hit && !b.result_cache_hit);
}
