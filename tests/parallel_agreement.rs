//! Parallel/serial agreement: the morsel-driven parallel executor must
//! return **bit-for-bit** what the serial executor returns — same rows,
//! same order, same `f64` values — for every thread count, on random
//! hierarchical self-join-free queries over random databases, through
//! every layer (raw `par_execute`, the engine, and ranked retrieval).

use dichotomy::engine::Strategy;
use probdb::prelude::{
    build_plan, par_execute, parse_query, ranked_answers, top_k, Engine, ExecOptions, ParOptions,
    Pool, ProbDb, Query, Value, Var, Vocabulary,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safeplan::{execute, ranked_probabilities};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Random hierarchical self-join-free query: a forest of hierarchy trees
/// where every atom's variables are a root-to-node path, each atom over a
/// fresh relation — exactly the fragment the extensional compiler accepts.
fn random_hierarchical_query(rng: &mut StdRng, voc: &mut Vocabulary) -> Query {
    fn grow(
        rng: &mut StdRng,
        voc: &mut Vocabulary,
        atoms: &mut Vec<cq::Atom>,
        path: &mut Vec<Var>,
        next_var: &mut u32,
        depth: u32,
    ) {
        for _ in 0..rng.gen_range(1..=2u32) {
            let name = format!("P{}", atoms.len());
            let rel = voc.relation(&name, path.len()).unwrap();
            let args = path.iter().map(|&v| cq::Term::Var(v)).collect();
            atoms.push(cq::Atom::new(rel, args));
        }
        if depth < 3 {
            for _ in 0..rng.gen_range(0..=2u32) {
                path.push(Var(*next_var));
                *next_var += 1;
                grow(rng, voc, atoms, path, next_var, depth + 1);
                path.pop();
            }
        }
    }
    let mut atoms = Vec::new();
    let mut next_var = 0u32;
    for _ in 0..rng.gen_range(1..=2u32) {
        let mut path = vec![Var(next_var)];
        next_var += 1;
        grow(rng, voc, &mut atoms, &mut path, &mut next_var, 1);
    }
    Query::new(atoms, vec![])
}

fn random_db(q: &Query, voc: &Vocabulary, rng: &mut StdRng) -> ProbDb {
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    let opts = RandomDbOptions {
        domain: 4,
        tuples_per_relation: 20,
        prob_range: (0.05, 0.95),
    };
    random_db_for_query(q, voc, opts, rng)
}

/// Raw executor agreement on random safe queries and databases, with a
/// tiny morsel grain so even small inputs split into many morsels.
#[test]
fn par_execute_matches_serial_on_random_hierarchical_queries() {
    let mut rng = StdRng::seed_from_u64(0x9_A7A11E1);
    for case in 0..25 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let plan = build_plan(&q).unwrap();
        for round in 0..2 {
            let db = random_db(&q, &voc, &mut rng);
            let probs = db.prob_vector();
            let serial = execute(&db, &probs, &plan);
            for threads in THREADS {
                let pool = Pool::with_grain(threads, 3);
                let par = par_execute(&db, &probs, &plan, &pool);
                assert_eq!(
                    serial,
                    par,
                    "case {case} round {round} threads {threads}: {}",
                    q.display(&voc)
                );
            }
        }
    }
}

/// Engine-level agreement: `ExecOptions::with_threads(n)` must not change
/// any probability the serial engine reports, across plan kinds (safe
/// extensional shapes and per-binding residual paths alike).
#[test]
fn engine_probabilities_are_thread_count_invariant() {
    let shapes = [
        "R(x)",
        "R(x), S(x,y)",
        "R(x), S(x,y), U(x,y,z)",
        "R(x), T(z,w)",
        "S(x,y), x < y",
        "S(x,x)",
        "R(x), not T(x)",
    ];
    let mut rng = StdRng::seed_from_u64(0xE9_617E);
    for shape in shapes {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, shape).unwrap();
        let db = random_db(&q, &voc, &mut rng);
        let serial = Engine::with_options(10_000, 5, ExecOptions::serial());
        let want = serial.evaluate(&db, &q, Strategy::Auto).unwrap();
        for threads in THREADS {
            let engine = Engine::with_options(10_000, 5, ExecOptions::with_threads(threads));
            let got = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
            assert_eq!(
                got.probability, want.probability,
                "{shape} diverged at {threads} threads"
            );
            assert_eq!(got.method, want.method, "{shape} at {threads} threads");
        }
    }
}

/// Ranked retrieval agreement: the batched ranked plan partitioned across
/// workers returns the identical answer list (tuples, probabilities, and
/// order) as the serial batched execution — and the same top-k.
#[test]
fn ranked_top_k_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(0x70_9B);
    for case in 0..10 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let vars = q.vars();
        let head = vec![vars[rng.gen_range(0..vars.len())]];
        let db = random_db(&q, &voc, &mut rng);
        let serial = Engine::with_options(10_000, 5, ExecOptions::serial());
        let want = ranked_answers(&serial, &db, &q, &head, Strategy::Auto).unwrap();
        let want_top = top_k(&serial, &db, &q, &head, 3, Strategy::Auto).unwrap();
        for threads in THREADS {
            let engine = Engine::with_options(10_000, 5, ExecOptions::with_threads(threads));
            let got = ranked_answers(&engine, &db, &q, &head, Strategy::Auto).unwrap();
            assert_eq!(want, got, "case {case} threads {threads}");
            let got_top = top_k(&engine, &db, &q, &head, 3, Strategy::Auto).unwrap();
            assert_eq!(want_top, got_top, "case {case} top-k threads {threads}");
        }
    }
}

/// The raw ranked-plan path agrees too (no engine, explicit pool).
#[test]
fn par_ranked_probabilities_match_serial() {
    let mut rng = StdRng::seed_from_u64(0xAB3);
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "Director(d), Credit(d,m)").unwrap();
    let d = q.vars()[0];
    let plan = safeplan::build_ranked_plan(&q, &[d]).unwrap();
    let db = random_db(&q, &voc, &mut rng);
    let probs = db.prob_vector();
    let serial = ranked_probabilities(&db, &probs, &plan, &[d]);
    for threads in THREADS {
        let par = safeplan::par_ranked_probabilities(
            &db,
            &probs,
            &plan,
            &[d],
            ParOptions::with_grain(threads, 2),
        );
        assert_eq!(serial, par, "threads {threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for random R/1, S/2 databases, the parallel executor is
    /// bit-identical to the serial one on q_hier, at every thread count.
    #[test]
    fn par_execute_is_bit_identical_on_random_dbs(
        r_rows in proptest::collection::vec((0u64..4, 0.05f64..0.95), 1..12),
        s_rows in proptest::collection::vec((0u64..4, 0u64..4, 0.05f64..0.95), 1..16),
    ) {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        for &(a, p) in &r_rows {
            db.insert(r, vec![Value(a)], p);
        }
        for &(a, b, p) in &s_rows {
            db.insert(s, vec![Value(a), Value(b)], p);
        }
        let plan = build_plan(&q).unwrap();
        let probs = db.prob_vector();
        let serial = execute(&db, &probs, &plan);
        for threads in THREADS {
            let pool = Pool::with_grain(threads, 2);
            let par = par_execute(&db, &probs, &plan, &pool);
            prop_assert_eq!(&serial, &par, "threads {}", threads);
        }
    }
}
