//! End-to-end coverage of the query service: endpoint behavior over real
//! sockets, epoch visibility of `apply`, result-cache hits bit-identical
//! to cold evaluation, watch streams following published epochs, and the
//! rejection paths (unknown symbols, malformed deltas with batch/op
//! positions, bad routes).

use std::time::Duration;

use probdb::prelude::*;
use telemetry::json::{parse, Json};

fn sensor_db() -> (ProbDb, Vocabulary) {
    let mut voc = Vocabulary::new();
    // Intern the query shape once so relations/constants exist server-side.
    parse_query(&mut voc, "R(x), S(x, y)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let mut db = ProbDb::new(voc.clone());
    let mut batch = DeltaBatch::new();
    for i in 0..20u64 {
        batch.insert(r, vec![Value(i)], 0.4 + (i as f64) * 0.01);
        batch.insert(s, vec![Value(i), Value(i + 100)], 0.7);
    }
    db.apply(&batch);
    (db, voc)
}

fn start_server() -> Server {
    let (db, _) = sensor_db();
    let opts = ServeOptions {
        workers: 2,
        watch_timeout: Duration::from_secs(2),
        ..ServeOptions::default()
    };
    Server::start(db, opts).expect("server starts")
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(|j| j.as_f64()).unwrap()
}

#[test]
fn health_eval_and_stats_round_trip() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let health = client.get("/health").unwrap();
    assert_eq!(health.status, 200);
    let doc = parse(&health.body).unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(num(&doc, "version") as u64, server.version());

    // Cold evaluation, then a repeat: the repeat must be a result-cache
    // hit with bit-identical probability.
    let body = "{\"query\":\"R(x), S(x, y)\"}";
    let first = client.post("/eval", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    let first_doc = parse(&first.body).unwrap();
    assert_eq!(first_doc.get("result_cache_hit"), Some(&Json::Bool(false)));

    let second = client.post("/eval", body).unwrap();
    let second_doc = parse(&second.body).unwrap();
    assert_eq!(second_doc.get("result_cache_hit"), Some(&Json::Bool(true)));
    assert_eq!(
        num(&first_doc, "probability").to_bits(),
        num(&second_doc, "probability").to_bits(),
        "result-cache hit must be bit-identical to the cold evaluation"
    );

    // The served probability matches a direct engine evaluation.
    let (db, mut voc) = sensor_db();
    let q = parse_query(&mut voc, "R(x), S(x, y)").unwrap();
    let direct = Engine::new().evaluate(&db, &q, Strategy::Auto).unwrap();
    assert_eq!(
        num(&first_doc, "probability").to_bits(),
        direct.probability.to_bits(),
        "served answer must be bit-identical to a direct evaluation"
    );

    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let sdoc = parse(&stats.body).unwrap();
    let rc = sdoc.get("result_cache").unwrap();
    assert_eq!(rc.get("enabled"), Some(&Json::Bool(true)));
    assert!(rc.get("hits").and_then(|j| j.as_u64()).unwrap() >= 1);
}

#[test]
fn apply_publishes_a_new_epoch_visible_to_eval() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let v0 = server.version();

    let before = client
        .post("/eval", "{\"query\":\"R(x), S(x, y)\"}")
        .unwrap();
    let before_doc = parse(&before.body).unwrap();
    assert_eq!(num(&before_doc, "version") as u64, v0);

    let apply = client
        .post(
            "/apply",
            "{\"deltas\":\"+ R(500) @ 0.9\\n+ S(500, 501) @ 0.9\"}",
        )
        .unwrap();
    assert_eq!(apply.status, 200, "{}", apply.body);
    let apply_doc = parse(&apply.body).unwrap();
    let v1 = num(&apply_doc, "version") as u64;
    assert!(v1 > v0);
    assert_eq!(server.version(), v1);

    let after = client
        .post("/eval", "{\"query\":\"R(x), S(x, y)\"}")
        .unwrap();
    let after_doc = parse(&after.body).unwrap();
    assert_eq!(num(&after_doc, "version") as u64, v1);
    // New epoch → new result-cache key → cold evaluation with a changed
    // probability (the inserted pair raises it).
    assert_eq!(after_doc.get("result_cache_hit"), Some(&Json::Bool(false)));
    assert!(num(&after_doc, "probability") > num(&before_doc, "probability"));
}

#[test]
fn apply_rejections_name_the_failing_delta() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let v0 = server.version();

    let resp = client
        .post(
            "/apply",
            "{\"deltas\":\"+ R(1) @ 0.5\\n\\n+ R(2) @ 0.6\\n+ R(3) @ 7\"}",
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(
        resp.body.contains("(batch 2, op 2)"),
        "rejection must name the failing delta: {}",
        resp.body
    );
    // A rejected script must leave the database untouched (no partial
    // batch, no epoch).
    assert_eq!(server.version(), v0);
}

#[test]
fn unknown_symbols_and_bad_routes_are_rejected() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let resp = client.post("/eval", "{\"query\":\"Nope(x)\"}").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("unknown relation"), "{}", resp.body);

    let resp = client
        .post("/eval", "{\"query\":\"R(x), S(x, 'mystery')\"}")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("unknown constant"), "{}", resp.body);

    let resp = client.post("/eval", "{}").unwrap();
    assert_eq!(resp.status, 400);

    let resp = client.get("/nope").unwrap();
    assert_eq!(resp.status, 404);

    let resp = client.get("/eval").unwrap();
    assert_eq!(resp.status, 405);

    // The connection survives all those errors (keep-alive).
    let health = client.get("/health").unwrap();
    assert_eq!(health.status, 200);
}

#[test]
fn rank_returns_answers_ordered_by_probability() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let resp = client
        .post(
            "/rank",
            "{\"query\":\"R(x0), S(x0, x1)\",\"head\":\"x0\",\"top\":5}",
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = parse(&resp.body).unwrap();
    let answers = doc.get("answers").and_then(|j| j.as_arr()).unwrap();
    assert_eq!(answers.len(), 5);
    let probs: Vec<f64> = answers
        .iter()
        .map(|a| a.get("probability").and_then(|j| j.as_f64()).unwrap())
        .collect();
    for w in probs.windows(2) {
        assert!(w[0] >= w[1], "answers must be ranked: {probs:?}");
    }

    let resp = client
        .post("/rank", "{\"query\":\"R(x0)\",\"head\":\"x9\"}")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("not in query"), "{}", resp.body);
}

#[test]
fn watch_streams_follow_published_epochs() {
    let server = start_server();
    let addr = server.addr();

    let watcher = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client
            .post("/watch", "{\"query\":\"R(x), S(x, y)\",\"updates\":3}")
            .unwrap()
    });

    // Give the watcher time to subscribe, then publish two epochs.
    std::thread::sleep(Duration::from_millis(200));
    server.apply("+ R(600) @ 0.8\n+ S(600, 601) @ 0.8").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    server.apply("~ R(600) @ 0.2").unwrap();

    let resp = watcher.join().unwrap();
    assert_eq!(resp.status, 200);
    let readings: Vec<Json> = resp
        .body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse(l).unwrap())
        .collect();
    assert_eq!(resp.body.lines().count(), readings.len());
    assert!(
        readings.len() >= 2,
        "watch must deliver the initial reading plus published epochs: {}",
        resp.body
    );
    let versions: Vec<u64> = readings
        .iter()
        .map(|r| r.get("version").and_then(|j| j.as_u64()).unwrap())
        .collect();
    for w in versions.windows(2) {
        assert!(w[0] < w[1], "watch versions must be monotone: {versions:?}");
    }
}
