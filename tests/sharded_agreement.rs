//! Sharded/DAG agreement: the operator-DAG scheduler over hash-partitioned
//! scans (PR 6) and the shard-resident storage layout (PR 8) must return
//! **bit-for-bit** what the serial set-at-a-time executor returns — same
//! rows, same order, same `f64` values — at every (threads × shards)
//! tuning including non-power-of-two fan-outs, on random hierarchical
//! self-join-free queries over random databases, through ranked (top-k)
//! retrieval, and through engine-level evaluation and incremental view
//! refresh. With the resident layout on, sharded scans must also resolve
//! without a single global-index probe.

use probdb::prelude::{
    build_plan, parse_query, query_probability, Engine, ExecOptions, ProbDb, Query, Strategy,
    Value, Var, Vocabulary,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safeplan::{
    dag_query_probability, dag_query_probability_counted, dag_ranked_probabilities, DagOptions,
    OpCounters,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SHARDS: [usize; 5] = [1, 2, 3, 4, 7];

/// Random hierarchical self-join-free query: a forest of hierarchy trees
/// where every atom's variables are a root-to-node path, each atom over a
/// fresh relation — exactly the fragment the extensional compiler accepts.
fn random_hierarchical_query(rng: &mut StdRng, voc: &mut Vocabulary) -> Query {
    fn grow(
        rng: &mut StdRng,
        voc: &mut Vocabulary,
        atoms: &mut Vec<cq::Atom>,
        path: &mut Vec<Var>,
        next_var: &mut u32,
        depth: u32,
    ) {
        for _ in 0..rng.gen_range(1..=2u32) {
            let name = format!("P{}", atoms.len());
            let rel = voc.relation(&name, path.len()).unwrap();
            let args = path.iter().map(|&v| cq::Term::Var(v)).collect();
            atoms.push(cq::Atom::new(rel, args));
        }
        if depth < 3 {
            for _ in 0..rng.gen_range(0..=2u32) {
                path.push(Var(*next_var));
                *next_var += 1;
                grow(rng, voc, atoms, path, next_var, depth + 1);
                path.pop();
            }
        }
    }
    let mut atoms = Vec::new();
    let mut next_var = 0u32;
    for _ in 0..rng.gen_range(1..=2u32) {
        let mut path = vec![Var(next_var)];
        next_var += 1;
        grow(rng, voc, &mut atoms, &mut path, &mut next_var, 1);
    }
    Query::new(atoms, vec![])
}

fn random_db(q: &Query, voc: &Vocabulary, rng: &mut StdRng) -> ProbDb {
    use pdb::generators::{random_db_for_query, RandomDbOptions};
    let opts = RandomDbOptions {
        domain: 4,
        tuples_per_relation: 20,
        prob_range: (0.05, 0.95),
    };
    random_db_for_query(q, voc, opts, rng)
}

/// DAG executor — every (threads × shards) tuning, including literal shard
/// fan-outs the engine's cost model would collapse on databases this small
/// — against the serial oracle, on random hierarchical SJF queries, with
/// **shard-resident storage on**: the database carries the matching
/// per-shard layout, so sharded scans resolve via per-shard posting lists
/// with zero global-index probes (counter-verified).
#[test]
fn dag_matches_serial_on_random_hierarchical_queries() {
    let mut rng = StdRng::seed_from_u64(0x5AA2D);
    for case in 0..25 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let plan = safeplan::optimize(&build_plan(&q).unwrap());
        for round in 0..2 {
            let mut db = random_db(&q, &voc, &mut rng);
            let oracle = query_probability(&db, &plan);
            for threads in THREADS {
                for shards in SHARDS {
                    db.set_shard_layout(shards);
                    let mut counters = OpCounters::default();
                    let (p, run) = dag_query_probability_counted(
                        &db,
                        &plan,
                        &DagOptions::new(threads, shards),
                        &mut counters,
                    );
                    assert_eq!(
                        p.to_bits(),
                        oracle.to_bits(),
                        "case {case} round {round} t={threads} s={shards}: {} ({p} vs {oracle})",
                        q.display(&voc)
                    );
                    assert!(run.sched.tasks >= 1, "case {case}: no tasks scheduled");
                    assert_eq!(
                        run.shards.shards, shards,
                        "case {case}: shard stats fan-out"
                    );
                    if shards > 1 {
                        assert_eq!(
                            counters.global_index_probes, 0,
                            "case {case} t={threads} s={shards}: resident scans probed the global index"
                        );
                        assert!(
                            counters.shard_index_probes > 0,
                            "case {case} t={threads} s={shards}: no shard-local probes recorded"
                        );
                    }
                }
            }
        }
    }
}

/// Ranked retrieval: the DAG sharded ranked path returns the serial
/// oracle's exact answer list — tuples, probabilities, and order — so any
/// top-k cut is identical.
#[test]
fn dag_ranked_top_k_matches_serial() {
    let mut rng = StdRng::seed_from_u64(0x5AA2E);
    for case in 0..10 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let vars = q.vars();
        let head = vec![vars[rng.gen_range(0..vars.len())]];
        let Ok(plan) = safeplan::build_ranked_plan(&q, &head) else {
            continue;
        };
        let db = random_db(&q, &voc, &mut rng);
        let probs = db.prob_vector();
        let oracle = safeplan::ranked_probabilities(&db, &probs, &plan, &head);
        for threads in THREADS {
            for shards in SHARDS {
                let (ranked, _run) = dag_ranked_probabilities(
                    &db,
                    &probs,
                    &plan,
                    &head,
                    &DagOptions::new(threads, shards),
                );
                assert_eq!(
                    ranked.len(),
                    oracle.len(),
                    "case {case} t={threads} s={shards}"
                );
                for (i, ((tv, tp), (ov, op))) in ranked.iter().zip(oracle.iter()).enumerate() {
                    assert_eq!(tv, ov, "case {case} t={threads} s={shards} row {i} tuple");
                    assert_eq!(
                        tp.to_bits(),
                        op.to_bits(),
                        "case {case} t={threads} s={shards} row {i} probability"
                    );
                }
            }
        }
    }
}

/// Engine-level agreement: `ExecOptions::with_tuning` (the `--shards` /
/// `ENGINE_SHARDS` path, cost-model gated) and incremental view refresh
/// with sharded Added-matching both reproduce the serial engine's bits.
#[test]
fn engine_and_views_agree_under_sharded_tuning() {
    let mut rng = StdRng::seed_from_u64(0x5AA2F);
    let text = "R(x), S(x,y)";

    let build = |voc: Vocabulary| ProbDb::new(voc);
    for (threads, shards) in [(1, 2), (2, 4), (4, 4), (8, 2), (4, 3)] {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, text).unwrap();
        let r = voc.find_relation("R").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = build(voc);
        for i in 0..40u64 {
            db.insert(r, vec![Value(i)], rng.gen_range(0.05..0.95));
            for j in 0..3u64 {
                db.insert(
                    s,
                    vec![Value(i), Value(100 + i * 3 + j)],
                    rng.gen_range(0.05..0.95),
                );
            }
        }

        // Shard-resident layout matching the tuning: the engine's DAG path
        // reads resident buffers, and churn below exercises delta routing.
        db.set_shard_layout(shards);

        let serial = Engine::with_options(0, 7, ExecOptions::serial());
        let tuned = Engine::with_options(0, 7, ExecOptions::with_tuning(threads, shards));
        let p0 = serial
            .evaluate(&db, &q, Strategy::Auto)
            .unwrap()
            .probability;
        let p1 = tuned.evaluate(&db, &q, Strategy::Auto).unwrap().probability;
        assert_eq!(p0.to_bits(), p1.to_bits(), "engine t={threads} s={shards}");

        // Incremental views: the sharded Added-matching refresh path must
        // track cold serial execution bit-for-bit across churn rounds.
        let view = tuned.subscribe(&db, &q).unwrap();
        assert!(view.is_incremental());
        for round in 0..3u64 {
            for i in 0..20u64 {
                let v = 10_000 * (round + 1) + i;
                db.insert(r, vec![Value(v)], rng.gen_range(0.05..0.95));
                db.insert(s, vec![Value(v), Value(v + 1)], rng.gen_range(0.05..0.95));
            }
            let refreshed = view.read(&db).unwrap().evaluation.probability;
            let cold = serial
                .evaluate(&db, &q, Strategy::Auto)
                .unwrap()
                .probability;
            assert_eq!(
                refreshed.to_bits(),
                cold.to_bits(),
                "view refresh round {round} t={threads} s={shards}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for random R/1, S/2 databases (duplicate inserts allowed),
    /// the DAG sharded executor is bit-identical to the serial executor on
    /// q_hier at every (threads × shards) tuning.
    #[test]
    fn dag_is_bit_identical_on_random_dbs(
        r_rows in proptest::collection::vec((0u64..4, 0.05f64..0.95), 1..12),
        s_rows in proptest::collection::vec((0u64..4, 0u64..4, 0.05f64..0.95), 1..16),
    ) {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        for &(a, p) in &r_rows {
            db.insert(r, vec![Value(a)], p);
        }
        for &(a, b, p) in &s_rows {
            db.insert(s, vec![Value(a), Value(b)], p);
        }
        let plan = safeplan::optimize(&build_plan(&q).unwrap());
        let oracle = query_probability(&db, &plan);
        for threads in THREADS {
            for shards in SHARDS {
                let (p, _run) =
                    dag_query_probability(&db, &plan, &DagOptions::new(threads, shards));
                prop_assert_eq!(p.to_bits(), oracle.to_bits(),
                    "t={} s={}", threads, shards);
            }
        }
    }
}
