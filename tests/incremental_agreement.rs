//! Incremental/cold agreement: after any sequence of delta batches
//! (inserts, deletes, probability updates), an [`IncrementalView`]'s
//! refreshed output must be **bit-for-bit** what a cold execution of the
//! same plan returns against the current database — same rows, same
//! order, same `f64` bits — at refresh thread counts 1/2/4/8, on random
//! hierarchical self-join-free queries over random databases. The
//! columnar executor is the oracle.

use probdb::prelude::{
    DeltaBatch, Engine, IncrementalView, ProbDb, Query, RefreshOptions, Strategy, Value, Var,
    Vocabulary,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safeplan::{execute, optimize, ProbRelation};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Random hierarchical self-join-free query: a forest of hierarchy trees
/// where every atom's variables are a root-to-node path, each atom over a
/// fresh relation — exactly the fragment the extensional compiler accepts.
fn random_hierarchical_query(rng: &mut StdRng, voc: &mut Vocabulary) -> Query {
    fn grow(
        rng: &mut StdRng,
        voc: &mut Vocabulary,
        atoms: &mut Vec<cq::Atom>,
        path: &mut Vec<Var>,
        next_var: &mut u32,
        depth: u32,
    ) {
        for _ in 0..rng.gen_range(1..=2u32) {
            let name = format!("P{}", atoms.len());
            let rel = voc.relation(&name, path.len()).unwrap();
            let args = path.iter().map(|&v| cq::Term::Var(v)).collect();
            atoms.push(cq::Atom::new(rel, args));
        }
        if depth < 3 {
            for _ in 0..rng.gen_range(0..=2u32) {
                path.push(Var(*next_var));
                *next_var += 1;
                grow(rng, voc, atoms, path, next_var, depth + 1);
                path.pop();
            }
        }
    }
    let mut atoms = Vec::new();
    let mut next_var = 0u32;
    for _ in 0..rng.gen_range(1..=2u32) {
        let mut path = vec![Var(next_var)];
        next_var += 1;
        grow(rng, voc, &mut atoms, &mut path, &mut next_var, 1);
    }
    Query::new(atoms, vec![])
}

/// Seed a database for `q` through the delta log (so views can be built at
/// any point of the mutation history).
fn seed_db(q: &Query, voc: &Vocabulary, rng: &mut StdRng) -> ProbDb {
    let mut db = ProbDb::new(voc.clone());
    let mut batch = DeltaBatch::new();
    for atom in &q.atoms {
        let arity = voc.arity(atom.rel);
        for _ in 0..rng.gen_range(8..=16usize) {
            let args: Vec<Value> = (0..arity).map(|_| Value(rng.gen_range(0..4u64))).collect();
            batch.insert(atom.rel, args, rng.gen_range(0.05..0.95));
        }
    }
    db.apply(&batch);
    db
}

/// One random delta batch over the query's relations: a mix of
/// probability updates and deletes of existing tuples plus fresh inserts
/// (some colliding with existing content — the upsert path).
fn random_batch(q: &Query, db: &ProbDb, rng: &mut StdRng) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    for _ in 0..rng.gen_range(1..=6usize) {
        let atom = &q.atoms[rng.gen_range(0..q.atoms.len())];
        let rel = atom.rel;
        let arity = db.voc.arity(rel);
        match rng.gen_range(0..3u32) {
            0 => {
                let args: Vec<Value> = (0..arity).map(|_| Value(rng.gen_range(0..5u64))).collect();
                batch.insert(rel, args, rng.gen_range(0.05..0.95));
            }
            1 => {
                let ids = db.tuples_of(rel);
                if ids.is_empty() {
                    continue;
                }
                let id = ids[rng.gen_range(0..ids.len())];
                batch.delete(rel, db.tuple(id).args.clone());
            }
            _ => {
                let ids = db.tuples_of(rel);
                if ids.is_empty() {
                    continue;
                }
                let id = ids[rng.gen_range(0..ids.len())];
                batch.update(rel, db.tuple(id).args.clone(), rng.gen_range(0.05..0.95));
            }
        }
    }
    batch
}

fn assert_bit_identical(got: &ProbRelation<f64>, want: &ProbRelation<f64>, ctx: &str) {
    assert_eq!(got.cols(), want.cols(), "{ctx}: schema");
    assert_eq!(got.len(), want.len(), "{ctx}: row count");
    for i in 0..want.len() {
        assert_eq!(got.row(i), want.row(i), "{ctx}: row {i} values");
        assert_eq!(
            got.prob(i).to_bits(),
            want.prob(i).to_bits(),
            "{ctx}: row {i} probability bits ({} vs {})",
            got.prob(i),
            want.prob(i)
        );
    }
}

/// The acceptance property: for random hierarchical SJF queries and random
/// delta sequences, `IncrementalView::refresh` output is bit-for-bit
/// identical to cold columnar execution at threads 1, 2, 4, and 8.
#[test]
fn refresh_is_bit_identical_to_cold_execution_on_random_deltas() {
    let mut rng = StdRng::seed_from_u64(0x1ECE);
    for case in 0..20 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let plan = optimize(&safeplan::build_plan(&q).unwrap());
        let mut db = seed_db(&q, &voc, &mut rng);
        // One view per thread count, all tracking the same delta history
        // (tiny grain forces multi-morsel parallel refresh schedules).
        let mut views: Vec<(usize, IncrementalView)> = THREADS
            .iter()
            .map(|&t| (t, IncrementalView::new(&db, &plan).unwrap()))
            .collect();
        for round in 0..8 {
            let batch = random_batch(&q, &db, &mut rng);
            db.apply(&batch);
            // Occasionally let a view lag a round (multi-batch catch-up).
            let lag = round % 3 == 1;
            let cold = execute(&db, &db.prob_vector(), &plan);
            for (threads, view) in &mut views {
                if lag && *threads == 4 {
                    continue;
                }
                view.refresh(&db, RefreshOptions::with_grain(*threads, 2));
                assert_bit_identical(
                    &view.output(),
                    &cold,
                    &format!(
                        "case {case} round {round} threads {threads}: {}",
                        q.display(&voc)
                    ),
                );
            }
        }
        // Views that lagged catch up on the final state.
        let cold = execute(&db, &db.prob_vector(), &plan);
        for (threads, view) in &mut views {
            view.refresh(&db, RefreshOptions::with_grain(*threads, 2));
            assert_bit_identical(
                &view.output(),
                &cold,
                &format!("case {case} final threads {threads}"),
            );
            let c = view.counters();
            assert!(
                c.incremental_refreshes > 0,
                "case {case}: refreshes should be incremental, got {c:?}"
            );
            assert_eq!(c.full_rebuilds, 0, "case {case}: no log gaps were created");
        }
    }
}

/// The engine-level wrap: `Engine::subscribe` + `ViewHandle::read` after
/// `apply` agrees with a fresh evaluation, probability bits included.
#[test]
fn subscribed_views_agree_with_cold_engine_evaluations() {
    let mut rng = StdRng::seed_from_u64(0x5_0B5C);
    for case in 0..10 {
        let mut voc = Vocabulary::new();
        let q = random_hierarchical_query(&mut rng, &mut voc);
        let mut db = seed_db(&q, &voc, &mut rng);
        let engine = Engine::new();
        let view = engine.subscribe(&db, &q).unwrap();
        for round in 0..5 {
            let batch = random_batch(&q, &db, &mut rng);
            db.apply(&batch);
            let reading = view.read(&db).unwrap();
            let cold = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
            assert_eq!(
                reading.evaluation.probability.to_bits(),
                cold.probability.to_bits(),
                "case {case} round {round}: {}",
                q.display(&voc)
            );
            assert_eq!(reading.version, db.version());
        }
    }
}
