//! Torn-snapshot property test (the epoch discipline's core guarantee):
//! concurrent readers racing a writer that applies random `DeltaBatch`es
//! must only ever observe **bit-for-bit the result of some published
//! epoch** — never a mix of two epochs — and the versions seen by each
//! reader must be monotone. Verified by first replaying the same batch
//! sequence serially to build a `version → probability-bits` oracle, then
//! racing {2, 4, 8} readers against the live writer and checking every
//! observation for oracle membership.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const READER_COUNTS: [usize; 3] = [2, 4, 8];
const BATCHES: usize = 24;

fn build_db(voc: &Vocabulary, rng: &mut StdRng) -> ProbDb {
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let mut db = ProbDb::new(voc.clone());
    let mut batch = DeltaBatch::new();
    for _ in 0..30 {
        let x = rng.gen_range(0..12u64);
        batch.insert(r, vec![Value(x)], rng.gen_range(0.05..0.95));
        batch.insert(
            s,
            vec![Value(x), Value(rng.gen_range(0..12u64))],
            rng.gen_range(0.05..0.95),
        );
    }
    db.apply(&batch);
    db
}

/// A mix of inserts, probability updates, and deletes over the query's
/// relations — some ops colliding with existing tuples (the upsert path).
fn random_batches(voc: &Vocabulary, rng: &mut StdRng) -> Vec<DeltaBatch> {
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    (0..BATCHES)
        .map(|_| {
            let mut batch = DeltaBatch::new();
            for _ in 0..rng.gen_range(1..=5usize) {
                let (rel, args) = if rng.gen_bool(0.5) {
                    (r, vec![Value(rng.gen_range(0..12u64))])
                } else {
                    (
                        s,
                        vec![
                            Value(rng.gen_range(0..12u64)),
                            Value(rng.gen_range(0..12u64)),
                        ],
                    )
                };
                match rng.gen_range(0..3u32) {
                    0 => batch.insert(rel, args, rng.gen_range(0.05..0.95)),
                    1 => batch.update(rel, args, rng.gen_range(0.05..0.95)),
                    _ => batch.delete(rel, args),
                };
            }
            batch
        })
        .collect()
}

#[test]
fn readers_only_observe_published_epochs() {
    let mut rng = StdRng::seed_from_u64(0xE90C);
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x, y)").unwrap();

    for &readers in &READER_COUNTS {
        let db = build_db(&voc, &mut rng);
        let batches = random_batches(&voc, &mut rng);

        // Serial replay: the oracle of every publishable state. The query
        // is hierarchical, so Auto evaluates extensionally — exact and
        // deterministic, making bit-equality meaningful.
        let oracle_engine = Engine::new();
        let mut oracle: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut replay = db.clone();
        let ev = oracle_engine.evaluate(&replay, &q, Strategy::Auto).unwrap();
        oracle.insert(replay.version(), ev.probability.to_bits());
        for b in &batches {
            replay.apply(b);
            let ev = oracle_engine.evaluate(&replay, &q, Strategy::Auto).unwrap();
            oracle.insert(replay.version(), ev.probability.to_bits());
        }
        assert_eq!(oracle.len(), BATCHES + 1);

        // Race: one writer publishing every batch, `readers` readers
        // continuously snapshotting and evaluating.
        let store = EpochStore::new(db);
        let engine = Arc::new(Engine::new());
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..readers {
                let mut reader = store.reader();
                let engine = Arc::clone(&engine);
                let done = Arc::clone(&done);
                let oracle = &oracle;
                let q = &q;
                handles.push(scope.spawn(move || {
                    let mut last_version = 0u64;
                    let mut observations = 0usize;
                    while !done.load(Ordering::Relaxed) {
                        let snap = reader.snapshot();
                        let version = snap.version();
                        assert!(
                            version >= last_version,
                            "snapshot versions went backwards: {last_version} -> {version}"
                        );
                        last_version = version;
                        let ev = engine.evaluate(&snap, q, Strategy::Auto).unwrap();
                        let expected = oracle
                            .get(&version)
                            .unwrap_or_else(|| panic!("observed unpublished version {version}"));
                        assert_eq!(
                            ev.probability.to_bits(),
                            *expected,
                            "torn read at version {version}: result is not bit-for-bit \
                             the serial replay of that epoch"
                        );
                        observations += 1;
                    }
                    observations
                }));
            }
            for b in &batches {
                store.apply(b);
                // A tiny pause so readers interleave with distinct epochs.
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
            done.store(true, Ordering::Relaxed);
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert!(total > 0, "readers never got to observe anything");
        });
        assert_eq!(store.version(), replay.version());
        // With every reader parked, retired epochs must drain on the next
        // publish cycle (reclamation is writer-driven).
        let r = voc.find_relation("R").unwrap();
        let mut flush = DeltaBatch::new();
        flush.insert(r, vec![Value(999)], 0.5);
        store.apply(&flush);
        assert!(
            store.retired_epochs() <= 1,
            "retired epochs not reclaimed: {}",
            store.retired_epochs()
        );
    }
}
