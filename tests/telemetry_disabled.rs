//! The disabled path is inert: with tracing off, an evaluation records no
//! spans at all; and switching tracing on does not perturb results or the
//! operator counters (observation only — bit-for-bit oracles hold).
//!
//! This lives in its own test binary so the process-global flag is under
//! this file's exclusive control.

use probdb::prelude::*;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn workload() -> (ProbDb, Query) {
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "R(x), S(x,y), T(y)").unwrap();
    let r = voc.find_relation("R").unwrap();
    let s = voc.find_relation("S").unwrap();
    let t = voc.find_relation("T").unwrap();
    let mut db = ProbDb::new(voc);
    for i in 0..48u64 {
        db.insert(r, vec![Value(i)], 0.2 + 0.6 * ((i % 5) as f64 / 5.0));
        for j in 0..3u64 {
            let y = i * 3 + j;
            db.insert(s, vec![Value(i), Value(y)], 0.5);
            db.insert(t, vec![Value(y)], 0.4);
        }
    }
    (db, q)
}

#[test]
fn disabled_run_records_zero_spans() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(false);
    telemetry::clear_spans();

    let (db, q) = workload();
    for exec in [ExecOptions::serial(), ExecOptions::with_tuning(4, 4)] {
        let engine = Engine::with_options(0, 7, exec);
        let ev = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
        assert!(ev.probability > 0.0);
    }
    assert_eq!(telemetry::span_count(), 0, "disabled run buffered spans");
    assert!(telemetry::take_spans().is_empty());
    assert_eq!(telemetry::dropped_spans(), 0);
}

#[test]
fn tracing_does_not_drift_results_or_counters() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, q) = workload();
    let run = |on: bool| {
        telemetry::set_enabled(on);
        telemetry::clear_spans();
        let engine = Engine::with_options(0, 7, ExecOptions::with_tuning(4, 4));
        let ev = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
        telemetry::clear_spans();
        telemetry::set_enabled(false);
        ev
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(
        off.probability.to_bits(),
        on.probability.to_bits(),
        "tracing perturbed the probability"
    );
    assert_eq!(
        off.extensional, on.extensional,
        "tracing perturbed the operator counters"
    );
    assert_eq!(
        off.scheduler.as_ref().map(|s| s.tasks),
        on.scheduler.as_ref().map(|s| s.tasks)
    );
    assert_eq!(
        off.sharding.as_ref().map(|s| &s.rows),
        on.sharding.as_ref().map(|s| &s.rows),
        "tracing perturbed the shard spread"
    );
}
