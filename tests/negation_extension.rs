//! Integration tests for the Theorem 3.11 extension: inversion-free
//! queries with negated sub-goals stay PTIME, and the evaluators agree
//! with possible-world enumeration.

use pdb::generators::{random_db_for_query, RandomDbOptions};
use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check(text: &str, seed: u64) {
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, text).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = RandomDbOptions {
        domain: 3,
        tuples_per_relation: 3,
        prob_range: (0.1, 0.9),
    };
    for _ in 0..5 {
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        let p_bf = brute_force_probability(&db, &q);
        let p_lin = exact_probability(&lineage_of(&db, &q), &db.prob_vector());
        assert!((p_lin - p_bf).abs() < 1e-9, "{text}: lineage");
        if !q.has_self_join() {
            let p_rec = eval_recurrence(&db, &q).unwrap();
            assert!(
                (p_rec - p_bf).abs() < 1e-9,
                "{text}: recurrence {p_rec} vs {p_bf}"
            );
        }
        let p_safe = eval_inversion_free(&db, &q).unwrap();
        assert!(
            (p_safe - p_bf).abs() < 1e-8,
            "{text}: safe {p_safe} vs {p_bf}"
        );
    }
}

#[test]
fn negated_unary_tail() {
    check("R(x), not T(x)", 1);
}

#[test]
fn negated_binary_subgoal() {
    check("R(x), not S(x,y)", 2);
}

#[test]
fn negation_with_predicates() {
    check("R(x), not S(x,y), x != y", 3);
}

#[test]
fn negation_with_self_join() {
    // Positive and negative occurrences of the same relation share tuples;
    // root analysis must treat them as unifiable.
    check("S(x,y), not S(y,x)", 4);
}

#[test]
fn purely_negative_component() {
    check("R(x), not U(z)", 5);
}

#[test]
fn classification_ignores_polarity() {
    let mut voc = Vocabulary::new();
    // Negating T does not save the non-hierarchical pattern (Def. 3.9).
    let q = parse_query(&mut voc, "R(x), S(x,y), not T(y)").unwrap();
    assert!(!classify(&q).unwrap().complexity.is_ptime());
    // And the hierarchical one stays PTIME.
    let q2 = parse_query(&mut voc, "R(x), not S(x,y)").unwrap();
    assert!(classify(&q2).unwrap().complexity.is_ptime());
}
