//! Random-*query* fuzzing: the strongest check on the dichotomy boundary
//! itself. Random conjunctive queries (random variable patterns, self-joins
//! and constants included) are classified; whenever the classifier says
//! PTIME, the engine's plan must reproduce exact brute-force probabilities
//! on random instances. A misclassified hard query would show up here as a
//! wrong probability (the safe evaluator's runtime root check turns the
//! other failure direction into a typed error, which the engine surfaces).

use dichotomy::engine::{Engine, Method, Strategy};
use pdb::generators::{random_db_for_query, RandomDbOptions};
use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a random query over R/1, S/2, T/1, U/2 with 2–4 atoms.
fn random_query(rng: &mut StdRng, voc: &mut Vocabulary) -> Query {
    let rels = [("R", 1usize), ("S", 2), ("T", 1), ("U", 2)];
    let n_atoms = rng.gen_range(2..=4);
    let n_vars = rng.gen_range(2..=4u32);
    let mut parts = Vec::new();
    for _ in 0..n_atoms {
        let (name, arity) = rels[rng.gen_range(0..rels.len())];
        let args: Vec<String> = (0..arity)
            .map(|_| {
                if rng.gen_bool(0.15) {
                    rng.gen_range(0..2u64).to_string()
                } else {
                    format!("v{}", rng.gen_range(0..n_vars))
                }
            })
            .collect();
        parts.push(format!("{name}({})", args.join(",")));
    }
    parse_query(voc, &parts.join(", ")).unwrap()
}

#[test]
fn random_queries_classify_and_evaluate_consistently() {
    let mut rng = StdRng::seed_from_u64(0xF0CC);
    let engine = Engine::with_samples_and_seed(40_000, 2);
    let mut ptime_seen = 0;
    let mut hard_seen = 0;
    for round in 0..60u64 {
        let mut voc = Vocabulary::new();
        let q = random_query(&mut rng, &mut voc);
        let Ok(c) = classify(&q) else {
            continue; // budget exceeded on an adversarial shape: acceptable
        };
        let opts = RandomDbOptions {
            domain: 3,
            tuples_per_relation: 3,
            prob_range: (0.1, 0.9),
        };
        let db = random_db_for_query(&q, &voc, opts, &mut rng);
        if db.num_tuples() > 20 {
            continue;
        }
        let exact = brute_force_probability(&db, &q);
        let ev = match engine.evaluate(&db, &q, Strategy::Auto) {
            Ok(ev) => ev,
            Err(e) => panic!("round {round}: engine failed on {q:?}: {e}"),
        };
        if c.complexity.is_ptime() {
            ptime_seen += 1;
            assert!(
                (ev.probability - exact).abs() < 1e-7,
                "round {round}: PTIME query {q:?} ({}) gave {} vs exact {exact}",
                ev.method,
                ev.probability
            );
        } else {
            hard_seen += 1;
            assert_eq!(ev.method, Method::KarpLuby);
            assert!(
                (ev.probability - exact).abs() < 6.0 * ev.std_error + 8e-3,
                "round {round}: hard query {q:?} estimate {} vs exact {exact}",
                ev.probability
            );
        }
    }
    // The generator must actually exercise both sides of the dichotomy.
    assert!(
        ptime_seen >= 10,
        "only {ptime_seen} PTIME queries generated"
    );
    assert!(hard_seen >= 5, "only {hard_seen} hard queries generated");
}
