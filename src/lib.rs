//! # probdb — the Dalvi–Suciu dichotomy, as a runnable system
//!
//! A from-scratch reproduction of *"The Dichotomy of Conjunctive Queries on
//! Probabilistic Structures"* (Dalvi & Suciu, PODS 2007): every Boolean
//! conjunctive query is either PTIME or #P-complete on tuple-independent
//! probabilistic databases, and the boundary is decidable.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`cq`] — the conjunctive-query language (atoms, arithmetic predicates,
//!   homomorphisms, minimization, unification),
//! * [`pdb`] — tuple-independent probabilistic structures, possible worlds,
//!   lineage extraction, workload generators,
//! * [`lineage`] — exact weighted model counting and Monte-Carlo
//!   estimators over event DNFs,
//! * [`dichotomy`] — the paper's contribution: hierarchy analysis,
//!   coverages, inversions, erasers, the classifier — plus a MystiQ-style
//!   engine split into a **planner** (classify once, compile a
//!   `PhysicalPlan`, memoize it in an LRU cache keyed by the canonical
//!   query) and an **executor** (run the plan against any database,
//!   extensionally where the query allows),
//! * [`reductions`] — executable #P-hardness reductions from bipartite
//!   2DNF counting,
//! * [`safeplan`] — extensional safe relational-algebra plans (independent
//!   join / independent project) with a set-at-a-time executor,
//! * [`numeric`] — arbitrary-precision integers and rationals, for exact
//!   probability computation and substructure counting,
//! * [`telemetry`] — hand-rolled observability: span tracing with
//!   Chrome-trace export (`ENGINE_TRACE`, `--trace`) and the typed metrics
//!   registry behind `Evaluation::metric_set` and the CLI's `--json` mode,
//! * [`serve`] — the concurrent query service: a hand-rolled HTTP/1.1 +
//!   JSON server whose workers read wait-free epoch snapshots of the
//!   database while a single writer applies deltas and publishes new
//!   epochs (`probdb serve`).
//!
//! ## Quickstart
//!
//! ```
//! use probdb::prelude::*;
//!
//! // Vocabulary and query: "is some calibrated sensor reporting?"
//! let mut voc = Vocabulary::new();
//! let q = parse_query(&mut voc, "Sensor(s), Reading(s, v)").unwrap();
//!
//! // A small tuple-independent database.
//! let sensor = voc.find_relation("Sensor").unwrap();
//! let reading = voc.find_relation("Reading").unwrap();
//! let mut db = ProbDb::new(voc);
//! db.insert(sensor, vec![Value(1)], 0.9);
//! db.insert(reading, vec![Value(1), Value(42)], 0.5);
//!
//! // Plan once (classification + compilation, cached), then execute —
//! // here through the set-at-a-time extensional safe-plan backend.
//! let engine = Engine::new();
//! let result = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
//! assert_eq!(result.method, Method::Extensional);
//! assert!((result.probability - 0.45).abs() < 1e-12);
//! assert!(!result.cache_hit);
//!
//! // Repeated traffic — alpha-renamed variants included — skips
//! // classification entirely.
//! let again = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
//! assert!(again.cache_hit);
//! assert_eq!(engine.cache_stats().classifications, 1);
//! ```

pub use cq;
pub use dichotomy;
pub use incremental;
pub use lineage;
pub use numeric;
pub use pdb;
pub use reductions;
pub use safeplan;
pub use serve;
pub use telemetry;

/// Everything a typical user needs.
pub mod prelude {
    pub use cq::{parse_query, Query, RelId, Term, Value, Var, Vocabulary};
    pub use dichotomy::engine::{
        Engine, Evaluation, ExecOptions, Method, Strategy, ViewHandle, ViewReading,
    };
    pub use dichotomy::{
        classify, count_substructures_recurrence, eval_inversion_free, eval_recurrence,
        eval_recurrence_exact, explain_evaluation, multisim_top_k, ranked_answers,
        ranked_answers_counted, top_k, Classification, Complexity, Executor, MultiSimConfig,
        PhysicalPlan, Planner, PlannerStats, RankedAnswer, RankedPlan, RankedRun,
    };
    pub use incremental::{IncrementalView, RefreshCounters, RefreshOptions};
    pub use lineage::{exact_probability, karp_luby, naive_mc, Dnf};
    pub use numeric::{BigInt, BigUint, QRat};
    pub use pdb::{
        brute_force_probability, count_satisfying_worlds_exact, lineage_of, DeltaBatch, DeltaOp,
        EpochStore, ProbDb, RatProbs, ReaderHandle, TupleId,
    };
    pub use reductions::{count_via_hk, count_via_pattern, Bipartite2Dnf};
    pub use safeplan::{
        build_plan, par_execute, par_query_probability, query_probability, query_probability_exact,
        OpCounters, ParOptions, PlanNode, Pool,
    };
    pub use serve::{HttpClient, HttpResponse, ServeOptions, Server};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, "R(x), S(x,y)").unwrap();
        let r = voc.find_relation("R").unwrap();
        let s = voc.find_relation("S").unwrap();
        let mut db = ProbDb::new(voc);
        db.insert(r, vec![Value(1)], 0.5);
        db.insert(s, vec![Value(1), Value(2)], 0.5);
        let engine = Engine::new();
        let ev = engine.evaluate(&db, &q, Strategy::Auto).unwrap();
        let bf = brute_force_probability(&db, &q);
        assert!((ev.probability - bf).abs() < 1e-12);
    }
}
