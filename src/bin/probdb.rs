//! The `probdb` command-line tool: classify, explain, and evaluate
//! conjunctive queries on probabilistic databases in the plain-text format
//! of `pdb::text`.
//!
//! ```text
//! probdb classify "R(x), S(x,y), T(y)"
//! probdb explain  "R(x), S(x,y), S(u,v), T(v)"
//! probdb eval db.txt "R(x), S(x,y)" [--mc-samples 100000] [--exact] [--threads N] [--shards N] [--json] [--trace out.json]
//! probdb count db.txt "R(x), S(x,y)"        # satisfying substructures
//! probdb plan "R(x), S(x,y)"                # the planner's physical plan
//! probdb rank db.txt "Director(d), Credit(d,m)" x0 [--top K] [--threads N]
//!                                   # head variables are x0, x1, … in
//!                                   # first-occurrence order
//! probdb apply db.txt deltas.txt [-o out.txt]   # apply delta batches
//! probdb watch db.txt "R(x), S(x,y)" deltas.txt [--threads N]
//!                                   # subscribe an incremental view, then
//!                                   # apply each batch and read through it
//! probdb serve db.txt [--addr host:port] [--workers N] [--slow-ms N] [--access-log file]
//!                                   # HTTP query service: epoch-snapshot
//!                                   # reads, single-writer applies;
//!                                   # /metrics (Prometheus), /debug/requests
//!                                   # (flight recorder), JSONL access log
//! ```
//!
//! Delta scripts hold one mutation per line — `+ R(1,2) @ 0.5` (insert),
//! `~ R(1,2) @ 0.9` (probability update), `- R(1,2)` (delete) — with blank
//! lines separating atomically-applied batches.
//!
//! `--threads N` runs the morsel-driven parallel executor on N workers
//! (results are bit-for-bit the serial answers; sampling stays
//! deterministic per seed and thread count). `--shards N` lays the loaded
//! database out shard-resident (per-shard columnar buffers and posting
//! lists) and runs extensional scans shard-affine on the pipelined
//! operator-DAG executor — still bit-for-bit serial answers; a per-plan
//! cost model keeps small scans monolithic. The `ENGINE_THREADS` / `ENGINE_SHARDS`
//! environment variables set the defaults. The `--exact` rational path is
//! serial-only and ignores both flags.
//!
//! `--trace out.json` (any command) records a span trace of the run —
//! planner phases, DAG tasks, operator kernels, morsel batches,
//! incremental refresh phases, sampling rounds — and writes it as Chrome
//! trace-event JSON, loadable in Perfetto / `chrome://tracing` with one
//! lane per worker thread. `ENGINE_TRACE=1` switches tracing on without a
//! file; any other non-off value (`ENGINE_TRACE=run.json`) doubles as the
//! output path. `--json` on `eval` and `rank` replaces the human-readable
//! report with one JSON object: the result plus the evaluation's uniform
//! metric snapshot (`Evaluation::metric_set` dotted keys).
//!
//! `serve` ships with observability on: `GET /metrics` exposes the
//! telemetry registry as Prometheus text, `GET /debug/requests` dumps the
//! in-memory flight recorder, and every request writes one JSONL access
//! log line (in-memory tail; `--access-log file` appends to disk).
//! Requests at or above the slow threshold — `--slow-ms N`, env
//! `ENGINE_SLOW_MS`, default 500 — log their plan summary (method,
//! dichotomy classification, operator counters) and retain a span capture
//! served by `/debug/requests`; `"trace": true` on `/eval`/`/rank`
//! returns the request's spans inline.

use dichotomy::engine::{Engine, ExecOptions, Strategy};
use dichotomy::{classify, count_substructures_recurrence, explain, ranked_answers_counted};
use pdb::{count_satisfying_worlds_exact, load_db};
use probdb::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: probdb classify <query> | explain <query> | eval <db.txt> <query> [--mc-samples N] [--threads N] [--shards N] [--json] [--trace out.json] | count <db.txt> <query> | plan <query> | rank <db.txt> <query> <head-var> [--top K] [--threads N] [--shards N] [--json] [--trace out.json] | apply <db.txt> <deltas.txt> [-o out.txt] | watch <db.txt> <query> <deltas.txt> [--threads N] [--shards N] [--trace out.json] | serve <db.txt> [--addr host:port] [--workers N] [--mc-samples N] [--threads N] [--shards N] [--slow-ms N] [--access-log file]"
            );
            ExitCode::from(2)
        }
    }
}

/// Parse optional `--threads N` / `--shards N` flags into execution
/// options; absent flags fall back to [`ExecOptions::default`], which
/// honors `ENGINE_THREADS` / `ENGINE_SHARDS`.
fn exec_options(args: &[String]) -> Result<ExecOptions, String> {
    let tuning = |flag: &str, default: usize| -> Result<usize, String> {
        match args.iter().position(|a| a == flag) {
            Some(i) => {
                let n = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?
                    .parse::<usize>()
                    .map_err(|e| e.to_string())?;
                if n == 0 {
                    return Err(format!("{flag} must be at least 1"));
                }
                Ok(n)
            }
            None => Ok(default),
        }
    };
    let defaults = ExecOptions::default();
    Ok(ExecOptions::with_tuning(
        tuning("--threads", defaults.threads)?,
        tuning("--shards", defaults.shards)?,
    ))
}

/// `--trace out.json`, falling back to a path-valued `ENGINE_TRACE`.
/// Either source forces span tracing on for the whole run.
fn trace_path(args: &[String]) -> Result<Option<String>, String> {
    let path = match args.iter().position(|a| a == "--trace") {
        Some(i) => Some(args.get(i + 1).ok_or("--trace needs a path")?.clone()),
        None => telemetry::env_trace_path(),
    };
    if path.is_some() {
        telemetry::set_enabled(true);
    }
    Ok(path)
}

/// Write every span recorded so far as Chrome trace-event JSON.
fn write_trace(path: &str) -> Result<(), String> {
    let spans = telemetry::take_spans();
    let json = telemetry::chrome_trace(&spans);
    std::fs::write(path, &json).map_err(|e| e.to_string())?;
    eprintln!(
        "trace: {} span(s), {} bytes -> {path}",
        spans.len(),
        json.len()
    );
    Ok(())
}

fn json_mode(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

fn run(args: &[String]) -> Result<(), String> {
    let trace = trace_path(args)?;
    dispatch(args)?;
    if let Some(path) = &trace {
        write_trace(path)?;
    }
    Ok(())
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "classify" => {
            let text = args.get(1).ok_or("missing query")?;
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let c = classify(&q).map_err(|e| e.to_string())?;
            println!("{}", c.complexity);
            Ok(())
        }
        "explain" => {
            let text = args.get(1).ok_or("missing query")?;
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let c = classify(&q).map_err(|e| e.to_string())?;
            print!("{}", explain(&c, &voc));
            Ok(())
        }
        "eval" => {
            let path = args.get(1).ok_or("missing database file")?;
            let text = args.get(2).ok_or("missing query")?;
            let samples = match args.iter().position(|a| a == "--mc-samples") {
                Some(i) => args
                    .get(i + 1)
                    .ok_or("--mc-samples needs a value")?
                    .parse::<u64>()
                    .map_err(|e| e.to_string())?,
                None => 100_000,
            };
            let data = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let mut voc = Vocabulary::new();
            if args.iter().any(|a| a == "--exact") {
                // Exact rational path: Eq. 3 recurrence when safe, exact
                // lineage compilation otherwise. Probabilities like `1/3`
                // in the database file survive with no rounding at all.
                let (db, probs) = pdb::load_db_exact(&mut voc, &data).map_err(|e| e.to_string())?;
                let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
                let (p, how) = match eval_recurrence_exact(&db, &probs, &q) {
                    Ok(p) => (p, "eq3-recurrence"),
                    Err(_) => (
                        pdb::exact_query_probability(&db, &probs, &q),
                        "exact-lineage",
                    ),
                };
                println!("P(q) = {p}");
                println!("     ≈ {:.12}   method={how}", p.to_f64());
                return Ok(());
            }
            let mut db = load_db(&mut voc, &data).map_err(|e| e.to_string())?;
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let exec = exec_options(args)?;
            // A sharded tuning gets a matching resident layout, so DAG
            // scans resolve inside per-shard buffers and posting lists.
            if exec.shards > 1 {
                db.set_shard_layout(exec.shards);
            }
            let engine = Engine::with_options(samples, 0xDA151, exec);
            let ev = engine
                .evaluate(&db, &q, Strategy::Auto)
                .map_err(|e| e.to_string())?;
            if json_mode(args) {
                println!(
                    "{{\"probability\":{},\"std_error\":{},\"method\":\"{}\",\"cache_hit\":{},\"metrics\":{}}}",
                    telemetry::metrics::format_f64(ev.probability),
                    telemetry::metrics::format_f64(ev.std_error),
                    telemetry::json::escape(&ev.method.to_string()),
                    ev.cache_hit,
                    ev.metric_set().to_json()
                );
            } else {
                print!("{}", explain_evaluation(&ev));
            }
            Ok(())
        }
        "count" => {
            let path = args.get(1).ok_or("missing database file")?;
            let text = args.get(2).ok_or("missing query")?;
            let data = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let mut voc = Vocabulary::new();
            let db = load_db(&mut voc, &data).map_err(|e| e.to_string())?;
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let n = db.num_tuples();
            // Safe queries count in PTIME via the exact rational recurrence;
            // everything else goes through exact lineage compilation.
            let (count, how) = match count_substructures_recurrence(&db, &q) {
                Ok(c) => (c, "eq3-recurrence"),
                Err(_) => (count_satisfying_worlds_exact(&db, &q), "exact-lineage"),
            };
            println!("{count} of 2^{n} substructures satisfy q   method={how}");
            Ok(())
        }
        "plan" => {
            let text = args.get(1).ok_or("missing query")?;
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            // The planner's view: classification once, then the compiled
            // physical plan the executor would run.
            let planner = Planner::new(100_000);
            let planned = planner.plan(&q).map_err(|e| e.to_string())?;
            print!("{}", planned.plan.display(&voc));
            if let PhysicalPlan::Extensional { plan } = &planned.plan {
                println!("({} operators, depth {})", plan.size(), plan.depth());
            }
            println!("classification: {}", planned.classification.complexity);
            Ok(())
        }
        "rank" => {
            let path = args.get(1).ok_or("missing database file")?;
            let text = args.get(2).ok_or("missing query")?;
            let head_name = args.get(3).ok_or("missing head variable")?;
            let k = match args.iter().position(|a| a == "--top") {
                Some(i) => Some(
                    args.get(i + 1)
                        .ok_or("--top needs a value")?
                        .parse::<usize>()
                        .map_err(|e| e.to_string())?,
                ),
                None => None,
            };
            let data = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let mut voc = Vocabulary::new();
            let mut db = load_db(&mut voc, &data).map_err(|e| e.to_string())?;
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            // Head variables are named x0, x1, … in parse order.
            let head_idx: usize = head_name
                .trim_start_matches('x')
                .parse()
                .map_err(|_| format!("head variable {head_name:?} should look like x0"))?;
            let head = [Var(head_idx as u32)];
            if !q.vars().contains(&head[0]) {
                return Err(format!("{head_name} does not occur in the query"));
            }
            let mut engine = Engine::new();
            engine.exec = exec_options(args)?;
            if engine.exec.shards > 1 {
                db.set_shard_layout(engine.exec.shards);
            }
            let (mut answers, ranked_run) =
                ranked_answers_counted(&engine, &db, &q, &head, Strategy::Auto)
                    .map_err(|e| e.to_string())?;
            if let Some(k) = k {
                answers.truncate(k);
            }
            if json_mode(args) {
                let rows: Vec<String> = answers
                    .iter()
                    .map(|a| {
                        let tuple: Vec<String> = a
                            .tuple
                            .iter()
                            .map(|v| format!("\"{}\"", telemetry::json::escape(&voc.value_name(*v))))
                            .collect();
                        format!(
                            "{{\"tuple\":[{}],\"probability\":{},\"std_error\":{},\"method\":\"{}\"}}",
                            tuple.join(","),
                            telemetry::metrics::format_f64(a.probability),
                            telemetry::metrics::format_f64(a.std_error),
                            telemetry::json::escape(&a.method.to_string())
                        )
                    })
                    .collect();
                println!(
                    "{{\"answers\":[{}],\"metrics\":{}}}",
                    rows.join(","),
                    ranked_run.metric_set().to_json()
                );
                return Ok(());
            }
            for a in &answers {
                let tuple: Vec<String> = a.tuple.iter().map(|v| voc.value_name(*v)).collect();
                println!(
                    "({})  p={:.6}{}  [{}]",
                    tuple.join(", "),
                    a.probability,
                    if a.std_error > 0.0 {
                        format!(" ±{:.6}", 1.96 * a.std_error)
                    } else {
                        String::new()
                    },
                    a.method
                );
            }
            let stats = engine.cache_stats();
            eprintln!(
                "planned once: {} classification(s), {} cache hit(s)",
                stats.classifications, stats.hits
            );
            Ok(())
        }
        "apply" => {
            let db_path = args.get(1).ok_or("missing database file")?;
            let delta_path = args.get(2).ok_or("missing delta file")?;
            let data = std::fs::read_to_string(db_path).map_err(|e| e.to_string())?;
            let script = std::fs::read_to_string(delta_path).map_err(|e| e.to_string())?;
            let mut voc = Vocabulary::new();
            let mut db = load_db(&mut voc, &data).map_err(|e| e.to_string())?;
            let batches = pdb::parse_delta_batches(&mut voc, &script).map_err(|e| e.to_string())?;
            db.voc = voc;
            let v0 = db.version();
            let ops: usize = batches.iter().map(pdb::DeltaBatch::len).sum();
            for batch in &batches {
                db.apply(batch);
            }
            eprintln!(
                "applied {} batch(es) / {ops} operation(s): version {v0} -> {}",
                batches.len(),
                db.version()
            );
            let dump = pdb::dump_db(&db);
            match args.iter().position(|a| a == "-o") {
                Some(i) => {
                    let out = args.get(i + 1).ok_or("-o needs a path")?;
                    std::fs::write(out, dump).map_err(|e| e.to_string())?;
                    eprintln!("wrote {out}");
                }
                None => print!("{dump}"),
            }
            Ok(())
        }
        "watch" => {
            let db_path = args.get(1).ok_or("missing database file")?;
            let text = args.get(2).ok_or("missing query")?;
            let delta_path = args.get(3).ok_or("missing delta file")?;
            let data = std::fs::read_to_string(db_path).map_err(|e| e.to_string())?;
            let script = std::fs::read_to_string(delta_path).map_err(|e| e.to_string())?;
            let mut voc = Vocabulary::new();
            let mut db = load_db(&mut voc, &data).map_err(|e| e.to_string())?;
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let batches = pdb::parse_delta_batches(&mut voc, &script).map_err(|e| e.to_string())?;
            db.voc = voc;
            let mut engine = Engine::new();
            engine.exec = exec_options(args)?;
            // Resident layout before subscribing: delta batches below then
            // route shard-locally and stamp per-shard versions.
            if engine.exec.shards > 1 {
                db.set_shard_layout(engine.exec.shards);
            }
            let view = engine.subscribe(&db, &q).map_err(|e| e.to_string())?;
            let first = view.read(&db).map_err(|e| e.to_string())?;
            println!(
                "v{}  P(q) = {:.9}   [{}{}]",
                first.version,
                first.evaluation.probability,
                first.evaluation.method,
                if view.is_incremental() {
                    ", incremental"
                } else {
                    ", re-executing"
                }
            );
            for batch in &batches {
                db.apply(batch);
                let reading = view.read(&db).map_err(|e| e.to_string())?;
                print!(
                    "v{}  P(q) = {:.9}   ({} op(s)",
                    reading.version,
                    reading.evaluation.probability,
                    batch.len()
                );
                if let Some(c) = &reading.evaluation.incremental {
                    print!(
                        "; {} row(s) re-touched, {} avoided",
                        c.rows_retouched, c.rows_avoided
                    );
                }
                println!(")");
            }
            if let Some(c) = view.counters() {
                eprintln!(
                    "totals: {} refresh(es), {} rebuild(s), {} row(s) re-touched vs {} avoided, {} group(s) refolded",
                    c.incremental_refreshes,
                    c.full_rebuilds,
                    c.rows_retouched,
                    c.rows_avoided,
                    c.groups_refolded
                );
            }
            Ok(())
        }
        "serve" => {
            let db_path = args.get(1).ok_or("missing database file")?;
            let data = std::fs::read_to_string(db_path).map_err(|e| e.to_string())?;
            let mut voc = Vocabulary::new();
            let mut db = load_db(&mut voc, &data).map_err(|e| e.to_string())?;
            db.voc = voc;
            let mut opts = serve::ServeOptions {
                exec: exec_options(args)?,
                ..serve::ServeOptions::default()
            };
            if opts.exec.shards > 1 {
                db.set_shard_layout(opts.exec.shards);
            }
            if let Some(i) = args.iter().position(|a| a == "--addr") {
                opts.addr = args.get(i + 1).ok_or("--addr needs host:port")?.clone();
            }
            if let Some(i) = args.iter().position(|a| a == "--workers") {
                opts.workers = args
                    .get(i + 1)
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            if let Some(i) = args.iter().position(|a| a == "--mc-samples") {
                opts.mc_samples = args
                    .get(i + 1)
                    .ok_or("--mc-samples needs a value")?
                    .parse()
                    .map_err(|e| format!("--mc-samples: {e}"))?;
            }
            if let Some(i) = args.iter().position(|a| a == "--slow-ms") {
                opts.slow_ms = Some(
                    args.get(i + 1)
                        .ok_or("--slow-ms needs a value (milliseconds)")?
                        .parse()
                        .map_err(|e| format!("--slow-ms: {e}"))?,
                );
            }
            if let Some(i) = args.iter().position(|a| a == "--access-log") {
                opts.access_log_path = Some(
                    args.get(i + 1)
                        .ok_or("--access-log needs a file path")?
                        .clone(),
                );
            }
            let server = serve::Server::start(db, opts).map_err(|e| e.to_string())?;
            println!("serving on http://{}", server.addr());
            eprintln!(
                "endpoints: GET /health /stats /metrics /debug/requests; \
                 POST /eval /rank /apply /watch (Ctrl-C to stop)"
            );
            eprintln!(
                "observability: slow threshold {} ms (--slow-ms / ENGINE_SLOW_MS)",
                server.slow_ms()
            );
            // Serve until killed.
            loop {
                std::thread::park();
            }
        }
        other => Err(format!("unknown command {other:?}")),
    }
}
