//! The `probdb` command-line tool: classify, explain, and evaluate
//! conjunctive queries on probabilistic databases in the plain-text format
//! of `pdb::text`.
//!
//! ```text
//! probdb classify "R(x), S(x,y), T(y)"
//! probdb explain  "R(x), S(x,y), S(u,v), T(v)"
//! probdb eval db.txt "R(x), S(x,y)" [--mc-samples 100000] [--exact]
//! probdb count db.txt "R(x), S(x,y)"        # satisfying substructures
//! probdb plan "R(x), S(x,y)"                # extensional safe plan
//! ```

use dichotomy::engine::{Engine, Strategy};
use dichotomy::{classify, count_substructures_recurrence, explain};
use pdb::{count_satisfying_worlds_exact, load_db};
use probdb::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: probdb classify <query> | explain <query> | eval <db.txt> <query> [--mc-samples N] | count <db.txt> <query> | plan <query>"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "classify" => {
            let text = args.get(1).ok_or("missing query")?;
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let c = classify(&q).map_err(|e| e.to_string())?;
            println!("{}", c.complexity);
            Ok(())
        }
        "explain" => {
            let text = args.get(1).ok_or("missing query")?;
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let c = classify(&q).map_err(|e| e.to_string())?;
            print!("{}", explain(&c, &voc));
            Ok(())
        }
        "eval" => {
            let path = args.get(1).ok_or("missing database file")?;
            let text = args.get(2).ok_or("missing query")?;
            let samples = match args.iter().position(|a| a == "--mc-samples") {
                Some(i) => args
                    .get(i + 1)
                    .ok_or("--mc-samples needs a value")?
                    .parse::<u64>()
                    .map_err(|e| e.to_string())?,
                None => 100_000,
            };
            let data = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let mut voc = Vocabulary::new();
            if args.iter().any(|a| a == "--exact") {
                // Exact rational path: Eq. 3 recurrence when safe, exact
                // lineage compilation otherwise. Probabilities like `1/3`
                // in the database file survive with no rounding at all.
                let (db, probs) =
                    pdb::load_db_exact(&mut voc, &data).map_err(|e| e.to_string())?;
                let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
                let (p, how) = match eval_recurrence_exact(&db, &probs, &q) {
                    Ok(p) => (p, "eq3-recurrence"),
                    Err(_) => (pdb::exact_query_probability(&db, &probs, &q), "exact-lineage"),
                };
                println!("P(q) = {p}");
                println!("     ≈ {:.12}   method={how}", p.to_f64());
                return Ok(());
            }
            let db = load_db(&mut voc, &data).map_err(|e| e.to_string())?;
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let engine = Engine {
                mc_samples: samples,
                seed: 0xDA151,
            };
            let ev = engine
                .evaluate(&db, &q, Strategy::Auto)
                .map_err(|e| e.to_string())?;
            if ev.std_error > 0.0 {
                println!(
                    "P(q) ≈ {:.6} ± {:.6}   method={} time={:?}",
                    ev.probability,
                    1.96 * ev.std_error,
                    ev.method,
                    ev.wall_time
                );
            } else {
                println!(
                    "P(q) = {:.9}   method={} time={:?}",
                    ev.probability, ev.method, ev.wall_time
                );
            }
            if let Some(c) = ev.classification {
                println!("classification: {}", c.complexity);
            }
            Ok(())
        }
        "count" => {
            let path = args.get(1).ok_or("missing database file")?;
            let text = args.get(2).ok_or("missing query")?;
            let data = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let mut voc = Vocabulary::new();
            let db = load_db(&mut voc, &data).map_err(|e| e.to_string())?;
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let n = db.num_tuples();
            // Safe queries count in PTIME via the exact rational recurrence;
            // everything else goes through exact lineage compilation.
            let (count, how) = match count_substructures_recurrence(&db, &q) {
                Ok(c) => (c, "eq3-recurrence"),
                Err(_) => (count_satisfying_worlds_exact(&db, &q), "exact-lineage"),
            };
            println!("{count} of 2^{n} substructures satisfy q   method={how}");
            Ok(())
        }
        "plan" => {
            let text = args.get(1).ok_or("missing query")?;
            let mut voc = Vocabulary::new();
            let q = parse_query(&mut voc, text).map_err(|e| e.to_string())?;
            let plan = build_plan(&q).map_err(|e| format!("no extensional plan: {e}"))?;
            print!("{}", plan.display(&voc));
            println!("({} operators, depth {})", plan.size(), plan.depth());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}
