//! Block-independent-disjoint databases: mutually exclusive alternatives.
//!
//! The paper's conclusions point at "richer probabilistic models (e.g.
//! probabilistic databases with disjoint and independent tuples)". This
//! example models a sensor fleet where each sensor reports *at most one*
//! reading — the readings of one sensor are mutually exclusive (one block),
//! sensors are independent of each other — and evaluates a join query three
//! ways: block-wise world enumeration (ground truth), the scalable
//! block-decomposition evaluator, and Monte Carlo.
//!
//! Run with: `cargo run --release --example bid_sensors`

use pdb::BidDb;
use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Query: does some sensor report a value flagged as critical?
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "Reading(s, v), Critical(v)").unwrap();
    let reading = voc.find_relation("Reading").unwrap();
    let critical = voc.find_relation("Critical").unwrap();

    // --- Small instance: enumeration is feasible, so cross-check ---------
    let mut small = BidDb::new(voc.clone());
    for s in 0..6u64 {
        // Sensor s reports value 10 (p=.35), value 11 (p=.35), or nothing.
        small.add_block(
            reading,
            vec![
                (vec![Value(s), Value(10)], 0.35),
                (vec![Value(s), Value(11)], 0.35),
            ],
        );
    }
    small.add_block(critical, vec![(vec![Value(10)], 0.5)]);
    small.add_block(critical, vec![(vec![Value(11)], 0.5)]);

    let by_enum = small.brute_force_probability(&q);
    let by_blocks = small.exact_probability(&q);
    let mut rng = StdRng::seed_from_u64(7);
    let by_mc = small.monte_carlo(&q, 200_000, &mut rng);
    println!("small instance ({} blocks):", small.num_blocks());
    println!("  world enumeration     : {by_enum:.9}");
    println!("  block decomposition   : {by_blocks:.9}");
    println!("  monte carlo (200k)    : {by_mc:.4}");
    assert!((by_enum - by_blocks).abs() < 1e-10);
    assert!((by_mc - by_enum).abs() < 0.01);

    // Mutual exclusion at work: with *independent* tuples both readings of
    // one sensor can coexist, and the query probability measurably differs
    // from the BID value — the two models are not interchangeable.
    let mut independent = ProbDb::new(voc.clone());
    for s in 0..6u64 {
        independent.insert(reading, vec![Value(s), Value(10)], 0.35);
        independent.insert(reading, vec![Value(s), Value(11)], 0.35);
    }
    independent.insert(critical, vec![Value(10)], 0.5);
    independent.insert(critical, vec![Value(11)], 0.5);
    let p_ind = Engine::new()
        .evaluate(&independent, &q, Strategy::ExactLineage)
        .unwrap()
        .probability;
    println!("  (same tuples, independent semantics: {p_ind:.9} — exclusivity matters)");
    assert!((p_ind - by_blocks).abs() > 1e-3);

    // --- Large instance: enumeration impossible, decomposition instant ----
    let mut large = BidDb::new(voc.clone());
    for s in 0..200u64 {
        large.add_block(
            reading,
            vec![
                (vec![Value(s), Value(10)], 0.01),
                (vec![Value(s), Value(11)], 0.39),
            ],
        );
    }
    large.add_block(critical, vec![(vec![Value(10)], 0.5)]);
    let worlds: f64 = 3f64.powi(200);
    println!("\nlarge instance: 200 sensor blocks → ~{worlds:.1e} worlds");
    let p = large.exact_probability(&q);
    println!("  block decomposition   : {p:.9}");
    // Closed form: P = 0.5 · (1 − 0.99^200).
    let expected = 0.5 * (1.0 - 0.99f64.powi(200));
    assert!((p - expected).abs() < 1e-9);
    println!("  closed form           : {expected:.9} ✓");
}
