//! Quickstart: build a tuple-independent probabilistic database, classify a
//! query with the dichotomy, and evaluate its probability with the best
//! plan.
//!
//! Run with: `cargo run --example quickstart`

use probdb::prelude::*;

fn main() {
    // --- 1. Vocabulary and data -----------------------------------------
    // A movie-style scenario with uncertain information extraction:
    // Director(d)        — d was correctly recognized as a director
    // Credit(d, m)       — extraction believes d directed movie m
    let mut voc = Vocabulary::new();
    let q_safe = parse_query(&mut voc, "Director(d), Credit(d, m)").unwrap();

    let director = voc.find_relation("Director").unwrap();
    let credit = voc.find_relation("Credit").unwrap();
    let mut db = ProbDb::new(voc.clone());
    // Two candidate directors with extraction confidences.
    db.insert(director, vec![Value(1)], 0.9);
    db.insert(director, vec![Value(2)], 0.4);
    // Credits with their own confidences.
    db.insert(credit, vec![Value(1), Value(100)], 0.8);
    db.insert(credit, vec![Value(1), Value(101)], 0.3);
    db.insert(credit, vec![Value(2), Value(100)], 0.6);

    // --- 2. Classify -----------------------------------------------------
    let classification = classify(&q_safe).unwrap();
    println!("query     : Director(d), Credit(d,m)");
    println!("complexity: {}", classification.complexity);

    // --- 3. Evaluate with the automatically selected plan ----------------
    let engine = Engine::new();
    let result = engine.evaluate(&db, &q_safe, Strategy::Auto).unwrap();
    println!(
        "P(q) = {:.6}   (method: {}, {:?})",
        result.probability, result.method, result.wall_time
    );

    // Cross-check against exhaustive possible-world enumeration.
    let exact = brute_force_probability(&db, &q_safe);
    println!(
        "brute force over 2^{} worlds = {:.6}",
        db.num_tuples(),
        exact
    );
    assert!((result.probability - exact).abs() < 1e-9);

    // --- 3b. Plan once, execute many -------------------------------------
    // The engine classified and compiled the plan exactly once; repeated
    // traffic (alpha-renamed variants included) hits the plan cache.
    let renamed = parse_query(&mut voc.clone(), "Director(u), Credit(u, w)").unwrap();
    let again = engine.evaluate(&db, &renamed, Strategy::Auto).unwrap();
    assert!(again.cache_hit);
    let stats = engine.cache_stats();
    println!(
        "plan cache: {} classification(s), {} hit(s) across {} evaluations",
        stats.classifications,
        stats.hits,
        stats.hits + stats.misses
    );

    // --- 4. A #P-hard query falls back to Monte Carlo --------------------
    // H_0 = R(x), S(x,y), S(x2,y2), T(y2): hierarchical, but its inversion
    // has no eraser (Theorem 1.5).
    let mut voc2 = Vocabulary::new();
    let q_hard = parse_query(&mut voc2, "R(x), S(x,y), S(x2,y2), T(y2)").unwrap();
    let r = voc2.find_relation("R").unwrap();
    let s = voc2.find_relation("S").unwrap();
    let t = voc2.find_relation("T").unwrap();
    let mut db2 = ProbDb::new(voc2);
    for i in 0..4u64 {
        db2.insert(r, vec![Value(i)], 0.5);
        db2.insert(t, vec![Value(10 + i)], 0.5);
        db2.insert(s, vec![Value(i), Value(10 + i)], 0.7);
        db2.insert(s, vec![Value(i), Value(10 + (i + 1) % 4)], 0.7);
    }
    let hard_class = classify(&q_hard).unwrap();
    println!("\nquery     : R(x), S(x,y), S(x2,y2), T(y2)   (H_0)");
    println!("complexity: {}", hard_class.complexity);
    let result = engine.evaluate(&db2, &q_hard, Strategy::Auto).unwrap();
    println!(
        "P(q) ≈ {:.4} ± {:.4}   (method: {})",
        result.probability,
        1.96 * result.std_error,
        result.method
    );
    let exact = brute_force_probability(&db2, &q_hard);
    println!("exact (small instance)      = {:.4}", exact);
    assert!((result.probability - exact).abs() < 0.03);
}
