//! Classify the paper's full query catalog and print the dichotomy table
//! (experiment E3 as an example binary; the bench harness's `table1`
//! report prints the same rows with timing columns).
//!
//! Run with: `cargo run --example dichotomy_catalog`

use dichotomy::{classify, Complexity, Expected, CATALOG};
use probdb::prelude::*;

fn main() {
    println!(
        "{:<28} {:<22} {:<34} paper agrees?",
        "query", "source", "classification"
    );
    println!("{}", "-".repeat(100));
    let mut agreements = 0;
    let mut divergences = 0;
    for entry in CATALOG {
        let mut voc = Vocabulary::new();
        let q = parse_query(&mut voc, entry.text).unwrap();
        let got = classify(&q).unwrap().complexity;
        let verdict = match (entry.expected, &got) {
            (Expected::PTime, Complexity::PTime(_))
            | (Expected::SharpPHard, Complexity::SharpPHard(_)) => {
                agreements += 1;
                "yes"
            }
            (Expected::DivergesFromPaper, _) => {
                divergences += 1;
                "documented divergence"
            }
            _ => "NO — BUG",
        };
        println!(
            "{:<28} {:<22} {:<34} {}",
            entry.name,
            entry.source,
            got.to_string(),
            verdict
        );
    }
    println!("{}", "-".repeat(100));
    println!(
        "{} queries: {} agree with the paper, {} documented divergence(s)",
        CATALOG.len(),
        agreements,
        divergences
    );
}
