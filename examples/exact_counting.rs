//! Exact rational probabilities and substructure counting.
//!
//! The paper defines tuple probabilities as *rational* numbers and its
//! conclusions ask "whether the hardness results can be sharpened to
//! counting the number of substructures (i.e. when all probabilities are
//! 1/2)". This example shows both directions of that question made
//! executable:
//!
//! * safe queries: the Eq. 3 recurrence run in exact rational arithmetic
//!   counts the satisfying substructures of a 160-tuple database — a
//!   2^160-world space — instantly and exactly,
//! * hard queries: counting falls back to exact lineage compilation, which
//!   is exponential in the worst case (as it must be, unless FP = #P).
//!
//! Run with: `cargo run --example exact_counting`

use probdb::prelude::*;

fn main() {
    // --- 1. A safe query on a database far past the f64 mantissa ---------
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "Account(a), Flagged(a,r)").unwrap();
    let account = voc.find_relation("Account").unwrap();
    let flagged = voc.find_relation("Flagged").unwrap();
    let mut db = ProbDb::new(voc);
    for a in 0..40u64 {
        db.insert(account, vec![Value(a)], 0.5);
        for r in 0..3u64 {
            db.insert(flagged, vec![Value(a), Value(100 + r)], 0.5);
        }
    }
    let n = db.num_tuples();
    println!("database: {n} independent tuples → 2^{n} substructures");

    let count = count_substructures_recurrence(&db, &q).unwrap();
    println!("substructures satisfying q (exact, via Eq. 3 at p = 1/2):");
    println!("  {count}");
    // Closed form: per account block (1 Account + 3 Flagged tuples) the
    // satisfying fraction is 1/2 · (1 − (1/2)^3) = 7/16; over 40 blocks
    // count = 16^40 − 9^40.
    let expected = BigUint::from_u64(16)
        .pow(40)
        .sub_ref(&BigUint::from_u64(9).pow(40));
    assert_eq!(count, expected);
    println!("  matches the closed form 16^40 − 9^40");

    // --- 2. Exact rational probability, arbitrary p ----------------------
    let probs = RatProbs::uniform(&db, QRat::ratio(1, 3));
    let p = eval_recurrence_exact(&db, &probs, &q).unwrap();
    println!("\nP(q) with every tuple at 1/3, exactly:");
    let digits = p.denominator().to_string().len();
    println!("  a rational with a {digits}-digit denominator");
    println!("  ≈ {:.12}", p.to_f64());

    // --- 3. The hard side stays hard --------------------------------------
    // H_0 on a small instance: counting must go through the lineage.
    let mut voc2 = Vocabulary::new();
    let q_hard = parse_query(&mut voc2, "R(x), S(x,y), S(x2,y2), T(y2)").unwrap();
    let r = voc2.find_relation("R").unwrap();
    let s = voc2.find_relation("S").unwrap();
    let t = voc2.find_relation("T").unwrap();
    let mut db2 = ProbDb::new(voc2);
    for i in 0..4u64 {
        db2.insert(r, vec![Value(i)], 0.5);
        db2.insert(t, vec![Value(10 + i)], 0.5);
        db2.insert(s, vec![Value(i), Value(10 + i)], 0.5);
        db2.insert(s, vec![Value(i), Value(10 + (i + 1) % 4)], 0.5);
    }
    let hard_count = count_satisfying_worlds_exact(&db2, &q_hard);
    println!(
        "\nhard query H_0 on {} tuples: {} of 2^{} substructures satisfy it",
        db2.num_tuples(),
        hard_count,
        db2.num_tuples()
    );
    // The recurrence refuses (self-join), as it must:
    assert!(count_substructures_recurrence(&db2, &q_hard).is_err());
    println!("(Eq. 3 recurrence correctly refuses the self-join; exact lineage was used)");
}
