//! Sensor-network monitoring: the MystiQ scenario at example scale.
//!
//! A fleet of unreliable sensors produces uncertain readings. Operators ask
//! Boolean risk queries; some admit safe plans (milliseconds, exact), others
//! are #P-hard and need Monte-Carlo estimation (much slower for the same
//! accuracy) — the one-to-two-orders-of-magnitude gap that motivated the
//! paper (§1).
//!
//! Run with: `cargo run --release --example sensor_network`

use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(2007);

    // --- Build the fleet --------------------------------------------------
    // Alive(s)           — sensor s is alive (battery model)
    // Hot(s, z)          — s reported zone z above threshold
    // Calib(z)           — zone z's calibration table is trusted
    let mut voc = Vocabulary::new();
    let q_alert = parse_query(&mut voc, "Alive(s), Hot(s, z)").unwrap();
    let q_confirmed = parse_query(&mut voc, "Alive(s), Hot(s, z), Calib(z)").unwrap();

    let alive = voc.find_relation("Alive").unwrap();
    let hot = voc.find_relation("Hot").unwrap();
    let calib = voc.find_relation("Calib").unwrap();

    let sensors = 60u64;
    let zones = 12u64;
    let mut db = ProbDb::new(voc);
    for s in 0..sensors {
        db.insert(alive, vec![Value(s)], rng.gen_range(0.6..0.99));
        for _ in 0..2 {
            let z = rng.gen_range(0..zones);
            db.insert(
                hot,
                vec![Value(s), Value(1000 + z)],
                rng.gen_range(0.05..0.4),
            );
        }
    }
    for z in 0..zones {
        db.insert(calib, vec![Value(1000 + z)], rng.gen_range(0.7..0.999));
    }
    println!(
        "fleet: {} sensors, {} zones, {} uncertain tuples\n",
        sensors,
        zones,
        db.num_tuples()
    );

    let engine = Engine::with_samples_and_seed(200_000, 1);

    // --- Query 1: "some alive sensor reports a hot zone" — safe ----------
    let c = classify(&q_alert).unwrap();
    let t0 = Instant::now();
    let ev = engine.evaluate(&db, &q_alert, Strategy::Auto).unwrap();
    let safe_time = t0.elapsed();
    println!("q_alert     = Alive(s), Hot(s,z)");
    println!("  class     : {}", c.complexity);
    println!(
        "  P        ≈ {:.6}  via {} in {safe_time:?}",
        ev.probability, ev.method
    );

    // --- Query 2: confirmed alert — non-hierarchical, #P-hard ------------
    let c = classify(&q_confirmed).unwrap();
    println!("\nq_confirmed = Alive(s), Hot(s,z), Calib(z)");
    println!("  class     : {}", c.complexity);
    let t0 = Instant::now();
    let ev_mc = engine.evaluate(&db, &q_confirmed, Strategy::Auto).unwrap();
    let mc_time = t0.elapsed();
    println!(
        "  P        ≈ {:.6} ± {:.6}  via {} in {mc_time:?}",
        ev_mc.probability,
        1.96 * ev_mc.std_error,
        ev_mc.method
    );
    // Exact reference by lineage compilation (feasible at this scale).
    let t0 = Instant::now();
    let ev_exact = engine
        .evaluate(&db, &q_confirmed, Strategy::ExactLineage)
        .unwrap();
    let exact_time = t0.elapsed();
    println!(
        "  P         = {:.6}  via exact lineage in {exact_time:?}",
        ev_exact.probability
    );
    assert!((ev_mc.probability - ev_exact.probability).abs() < 0.01);

    // --- The MystiQ gap ----------------------------------------------------
    let ratio = mc_time.as_secs_f64() / safe_time.as_secs_f64().max(1e-9);
    println!(
        "\nsafe plan vs Monte-Carlo wall-time ratio at this scale: {ratio:.0}x \
         (the paper reports 1-2 orders of magnitude, seconds vs minutes)"
    );
}
