//! Entity deduplication with ranked answers and disjoint alternatives —
//! the MystiQ-style workload on top of the dichotomy engine.
//!
//! An extraction pipeline produced uncertain `Mention(candidate, doc)`
//! links and per-candidate trust scores `Trusted(candidate)`. Analysts ask
//! "which candidates are supported by some document?" and want the answers
//! *ranked by probability* — each answer's residual Boolean query is
//! planned by the dichotomy (safe plan where possible).
//!
//! The second part shows the block-independent-disjoint (BID) extension
//! from the paper's conclusions: each document links to *exactly one*
//! candidate (mutually exclusive alternatives), which the
//! tuple-independent model cannot express.
//!
//! Run with: `cargo run --release --example ranked_dedup`

use dichotomy::ranking::ranked_answers;
use pdb::BidDb;
use probdb::prelude::*;

fn main() {
    // --- Part 1: ranked answers over a tuple-independent database --------
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "Trusted(c), Mention(c, d)").unwrap();
    let c_var = q.vars()[0];
    let trusted = voc.find_relation("Trusted").unwrap();
    let mention = voc.find_relation("Mention").unwrap();

    let mut db = ProbDb::new(voc.clone());
    db.insert(trusted, vec![Value(1)], 0.95);
    db.insert(trusted, vec![Value(2)], 0.50);
    db.insert(trusted, vec![Value(3)], 0.80);
    db.insert(mention, vec![Value(1), Value(100)], 0.60);
    db.insert(mention, vec![Value(2), Value(100)], 0.90);
    db.insert(mention, vec![Value(2), Value(101)], 0.70);
    db.insert(mention, vec![Value(3), Value(102)], 0.20);

    let engine = Engine::new();
    let answers = ranked_answers(&engine, &db, &q, &[c_var], Strategy::Auto).unwrap();
    println!("candidates supported by some document, ranked:");
    for a in &answers {
        println!(
            "  candidate {}  P = {:.4}   (plan: {})",
            a.tuple[0].0, a.probability, a.method
        );
    }
    assert!(answers
        .windows(2)
        .all(|w| w[0].probability >= w[1].probability));

    // --- Part 2: disjoint alternatives (BID) ------------------------------
    // Each document mentions exactly one candidate — alternatives within a
    // block are mutually exclusive.
    println!("\nBID model: each document resolves to one candidate");
    let q_c2 = parse_query(&mut voc, "Mention(2, d)").unwrap();
    let mut bid = BidDb::new(voc.clone());
    // Document 100 resolves to candidate 1 XOR candidate 2.
    bid.add_block(
        mention,
        vec![
            (vec![Value(1), Value(100)], 0.45),
            (vec![Value(2), Value(100)], 0.35),
        ],
    );
    // Document 101 resolves to candidate 2 (or stays unresolved).
    bid.add_block(mention, vec![(vec![Value(2), Value(101)], 0.70)]);
    let p_c2 = bid.brute_force_probability(&q_c2);
    println!("  P(candidate 2 mentioned somewhere) = {p_c2:.4}");
    // Disjointness matters: under independence this would be
    // 1 - (1-0.35)(1-0.70) = 0.805; under BID it is 0.35 + 0.70 - 0.35*0.70.
    let independent = 1.0 - (1.0 - 0.35) * (1.0 - 0.70);
    println!("  (independent-tuples model would give {independent:.4} — same here");
    println!("   because the blocks are different documents; but within doc 100:)");
    let q_both = parse_query(&mut voc, "Mention(1,100), Mention(2,100)").unwrap();
    println!(
        "  P(doc 100 resolves to BOTH candidates) = {:.4}  (impossible under BID)",
        bid.brute_force_probability(&q_both)
    );
    assert_eq!(bid.brute_force_probability(&q_both), 0.0);
}
