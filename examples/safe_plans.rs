//! Extensional safe plans: compile a tractable query to a relational-algebra
//! plan with independent-join / independent-project operators, print it,
//! execute it set-at-a-time, and cross-check against the tuple-at-a-time
//! recurrence — in both `f64` and exact rational arithmetic.
//!
//! Run with: `cargo run --example safe_plans`

use probdb::prelude::*;

fn main() {
    // An asset-tracking scenario with uncertain readings:
    // Tag(t)           — RFID tag t is active
    // Seen(t, l)       — tag t was sighted at location l
    // Zone(t, l, z)    — the sighting of t at l resolved to zone z
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "Tag(t), Seen(t,l), Zone(t,l,z)").unwrap();

    let tag = voc.find_relation("Tag").unwrap();
    let seen = voc.find_relation("Seen").unwrap();
    let zone = voc.find_relation("Zone").unwrap();
    let mut db = ProbDb::new(voc.clone());
    for t in 0..4u64 {
        db.insert(tag, vec![Value(t)], 0.8);
        for l in 0..3u64 {
            db.insert(seen, vec![Value(t), Value(100 + l)], 0.5);
            db.insert(
                zone,
                vec![Value(t), Value(100 + l), Value(200 + l % 2)],
                0.6,
            );
        }
    }

    // --- 1. Compile ------------------------------------------------------
    let plan = build_plan(&q).unwrap();
    println!("query: Tag(t), Seen(t,l), Zone(t,l,z)\n");
    println!(
        "extensional safe plan ({} operators, depth {}):",
        plan.size(),
        plan.depth()
    );
    print!("{}", plan.display(&voc));

    // --- 2. Execute (set-at-a-time) ---------------------------------------
    let p_plan = query_probability(&db, &plan);
    println!("\nP(q) by plan execution      = {p_plan:.9}");

    // --- 3. Cross-check: tuple-at-a-time recurrence (Eq. 3) ---------------
    let p_rec = eval_recurrence(&db, &q).unwrap();
    println!("P(q) by Eq. 3 recurrence    = {p_rec:.9}");
    assert!((p_plan - p_rec).abs() < 1e-12);

    // --- 4. Exact rational execution ---------------------------------------
    // Probabilities above are dyadic-ish floats; converting them exactly and
    // re-running the same plan gives the arbitrary-precision answer the
    // paper's PTIME claim is actually about.
    let probs = RatProbs::from_db(&db);
    let p_exact = query_probability_exact(&db, &probs, &plan);
    println!("P(q) in exact rationals     = {p_exact}");
    println!("  ≈ {:.9}", p_exact.to_f64());
    assert!((p_exact.to_f64() - p_plan).abs() < 1e-12);

    // --- 5. Queries the compiler refuses ----------------------------------
    for hard in ["R(x), S(x,y), T(y)", "R(x,y), R(y,z)"] {
        let mut voc2 = Vocabulary::new();
        let q2 = parse_query(&mut voc2, hard).unwrap();
        match build_plan(&q2) {
            Err(e) => println!("no extensional plan for {hard}: {e}"),
            Ok(_) => unreachable!("{hard} must not get a plan"),
        }
    }
}
