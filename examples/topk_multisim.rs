//! Top-k ranked retrieval by multisimulation.
//!
//! MystiQ-style workloads don't need every answer probability to full
//! precision — they need the *top k* answers, correctly ordered. This
//! example runs the interval-based multisimulation over the candidate
//! lineages of a hard query and shows the adaptive sample allocation:
//! candidates that are clearly in (or clearly out) stop simulating early.
//!
//! Run with: `cargo run --example topk_multisim`

use probdb::prelude::*;

fn main() {
    // An uncertain co-citation graph: which authors x have a path
    // Cites(x,y), Cites(y,z)? Per-answer residuals of the 2-path query are
    // safe, but we treat them with pure Monte Carlo here to showcase the
    // multisimulation harness on the kind of query (self-join!) the paper
    // proves #P-hard in the Boolean case.
    let mut voc = Vocabulary::new();
    let q = parse_query(&mut voc, "Cites(x,y), Cites(y,z)").unwrap();
    let x = q.vars()[0];
    let cites = voc.find_relation("Cites").unwrap();
    let mut db = ProbDb::new(voc);

    // A layered citation graph with skewed confidences.
    let confidences = [0.95, 0.9, 0.7, 0.5, 0.3, 0.1];
    for (i, &c) in confidences.iter().enumerate() {
        let a = i as u64;
        db.insert(cites, vec![Value(a), Value(100 + a)], c);
        db.insert(cites, vec![Value(100 + a), Value(200 + a)], 0.9);
        // Cross edges make some lineages share tuples.
        db.insert(cites, vec![Value(a), Value(100 + (a + 1) % 6)], 0.2);
    }
    println!("{} uncertain citation edges", db.num_tuples());

    let config = MultiSimConfig {
        batch: 256,
        delta: 0.05,
        ..Default::default()
    };
    let k = 3;
    let result = multisim_top_k(&db, &q, &[x], k, config);
    println!(
        "\nmultisimulation for top-{k}: converged = {}, total samples = {}",
        result.converged, result.total_samples
    );
    println!(
        "{:<10} {:>10} {:>18} {:>10}",
        "answer", "estimate", "interval", "samples"
    );
    for a in &result.all {
        println!(
            "x = {:<6} {:>10.4} [{:>7.4}, {:>7.4}] {:>10}",
            a.tuple[0].0, a.estimate, a.low, a.high, a.samples
        );
    }

    // Cross-check the retrieved set against exact per-answer evaluation.
    let engine = Engine::new();
    let exact = dichotomy::ranked_answers(&engine, &db, &q, &[x], Strategy::ExactLineage).unwrap();
    let exact_top: Vec<_> = exact.iter().take(k).map(|a| a.tuple.clone()).collect();
    let ms_top: Vec<_> = result.top.iter().map(|a| a.tuple.clone()).collect();
    println!("\nexact top-{k}:          {exact_top:?}");
    println!("multisim top-{k}:       {ms_top:?}");
    if result.converged {
        assert_eq!(exact_top, ms_top, "converged multisimulation must agree");
        println!("retrieved set verified against exact ranking ✓");
    }
}
