//! Run the paper's #P-hardness reductions end to end: count the models of
//! a bipartite 2DNF formula through (a) the Theorem B.5 pattern reduction
//! (non-hierarchical queries, Proposition B.3's `P_3` and triangle
//! variants) and (b) the Appendix C `H_k` pipeline with its
//! Vandermonde-style recovery of the assignment counts `T_{i,j}`.
//!
//! Run with: `cargo run --release --example hardness_reduction`

use probdb::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reductions::hk;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let phi = Bipartite2Dnf::random(3, 3, 3, &mut rng);
    println!("Φ over x0..x2, y0..y2 with clauses {:?}", phi.clauses);
    let truth = phi.count_models();
    println!(
        "direct model count                : {truth} / {}",
        1 << phi.num_vars()
    );

    // (a) Theorem B.5: the non-hierarchical pattern R(x), S(x,y), T(y).
    let mut voc = Vocabulary::new();
    let pattern = parse_query(&mut voc, "R(x), S(x,y), T(y)").unwrap();
    let vars = pattern.vars();
    let (x, y) = (vars[0], vars[1]);
    let via_pattern = count_via_pattern(&pattern, x, y, &phi, &voc);
    println!("via q_non-h reduction (Thm B.5)   : {via_pattern}");
    assert_eq!(via_pattern, truth);

    // ... and the triangle on triangled graphs (Proposition B.3).
    let mut voc_t = Vocabulary::new();
    let triangle = parse_query(&mut voc_t, "E(z,x), E(x,y), E(y,z)").unwrap();
    let tv = triangle.vars();
    // atoms: E(z,x), E(x,y), E(y,z) — x is tv[1], y is tv[2].
    let via_triangle = count_via_pattern(&triangle, tv[1], tv[2], &phi, &voc_t);
    println!("via triangle reduction (Prop B.3) : {via_triangle}");
    assert_eq!(via_triangle, truth);

    // (b) Appendix C: the H_2 chain-query pipeline. The oracle plays the
    // role of a (hypothetical) polynomial H_k evaluator; here it is exact
    // lineage compilation on the constructed instances.
    let oracle = |db: &ProbDb, q: &Query| exact_probability(&lineage_of(db, q), &db.prob_vector());
    let via_h2 = count_via_hk(&phi, 2, &oracle);
    println!("via H_2 pipeline (App. C)         : {via_h2}");
    assert_eq!(via_h2, truth);

    // Show one constructed H_2 instance for inspection.
    let mut voc_h = Vocabulary::new();
    let inst = hk::build_hk_instance(&phi, 2, 0.3, 0.6, &mut voc_h);
    println!(
        "\none H_2 instance at (p1,p2)=({},{}): {} tuples, query: {}",
        inst.p1,
        inst.p2,
        inst.db.num_tuples(),
        inst.query.display(&inst.db.voc)
    );
    println!("\nall three reductions agree with the direct count.");
}
